package lr

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

func smallDataset(t *testing.T, rows, dim int) *data.ClassifyDataset {
	t.Helper()
	ds, err := data.GenerateClassify(data.ClassifyConfig{
		Rows: rows, Dim: dim, NnzPerRow: 8, Skew: 1.0, NoiseRate: 0.02, WeightNnz: dim / 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func newEngine(executors, servers int) *core.Engine {
	opt := core.DefaultOptions()
	opt.Executors = executors
	opt.Servers = servers
	return core.NewEngine(opt)
}

func loadRDD(e *core.Engine, ds *data.ClassifyDataset) *rdd.RDD[data.Instance] {
	parts := data.Partition(ds.Instances, e.RDD.NumExecutors())
	return rdd.FromSlices(e.RDD, parts).Cache()
}

func trainWith(t *testing.T, opt Optimizer, cfg Config) (*core.Trace, []float64, *data.ClassifyDataset) {
	t.Helper()
	ds := smallDataset(t, 2000, 500)
	e := newEngine(4, 4)
	var trace *core.Trace
	var weights []float64
	e.Run(func(p *simnet.Proc) {
		model, err := Train(p, e, loadRDD(e, ds), ds.Config.Dim, cfg, opt)
		if err != nil {
			t.Error(err)
			return
		}
		trace = model.Trace
		weights = model.Weights.Pull(p, e.Driver())
	})
	return trace, weights, ds
}

func TestTrainSGDConverges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 80
	cfg.BatchFraction = 0.3
	trace, w, ds := trainWith(t, NewSGD(), cfg)
	if trace.Len() != 80 {
		t.Fatalf("trace has %d samples, want 80", trace.Len())
	}
	final := EvalLoss(Logistic, ds.Instances, w)
	if final > 0.6 {
		t.Fatalf("final full-data loss %v did not drop below 0.6 (ln2=%v)", final, math.Ln2)
	}
	if acc := Accuracy(ds.Instances, w); acc < 0.7 {
		t.Fatalf("accuracy %v too low", acc)
	}
}

func TestTrainAdamConverges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 40
	cfg.BatchFraction = 0.2
	cfg.LearningRate = 0.1
	adam := NewAdam()
	adam.LearningRate = 0.1
	trace, w, ds := trainWith(t, adam, cfg)
	final := EvalLoss(Logistic, ds.Instances, w)
	if final > 0.5 {
		t.Fatalf("Adam final loss %v too high", final)
	}
	if trace.Best() >= math.Ln2 {
		t.Fatalf("Adam never improved on ln2: best=%v", trace.Best())
	}
}

func TestTrainAdagradAndRMSProp(t *testing.T) {
	for _, opt := range []Optimizer{NewAdagrad(), NewRMSProp()} {
		cfg := DefaultConfig()
		cfg.Iterations = 40
		cfg.BatchFraction = 0.2
		_, w, ds := trainWith(t, opt, cfg)
		final := EvalLoss(Logistic, ds.Instances, w)
		if final > 0.6 {
			t.Fatalf("%s final loss %v too high", opt.Name(), final)
		}
	}
}

func TestTrainSVMHinge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 120
	cfg.BatchFraction = 0.3
	cfg.Objective = Hinge
	sgd := NewSGD()
	sgd.LearningRate = 0.3
	_, w, ds := trainWith(t, sgd, cfg)
	if acc := Accuracy(ds.Instances, w); acc < 0.7 {
		t.Fatalf("SVM accuracy %v too low", acc)
	}
}

func TestAdamMatchesSingleNodeReference(t *testing.T) {
	// Full-batch PS2 Adam must match a single-node implementation of the
	// paper's equation (1) step for step (within float tolerance), proving
	// the distributed zip update computes exactly the right thing.
	ds := smallDataset(t, 300, 120)
	iters := 5
	cfg := DefaultConfig()
	cfg.Iterations = iters
	cfg.BatchFraction = 1.0
	cfg.LearningRate = 0.3

	e := newEngine(3, 4)
	adam := NewAdam()
	adam.LearningRate = 0.3
	var got []float64
	e.Run(func(p *simnet.Proc) {
		model, err := Train(p, e, loadRDD(e, ds), ds.Config.Dim, cfg, adam)
		if err != nil {
			t.Error(err)
			return
		}
		got = model.Weights.Pull(p, e.Driver())
	})

	// Single-node reference.
	dim := ds.Config.Dim
	w := make([]float64, dim)
	s := make([]float64, dim)
	v := make([]float64, dim)
	for it := 1; it <= iters; it++ {
		grad := make([]float64, dim)
		for _, inst := range ds.Instances {
			pr := linalg.Sigmoid(inst.Features.DotDense(w))
			inst.Features.AddToDense(grad, pr-inst.Label)
		}
		n := float64(len(ds.Instances))
		corr1 := 1 - math.Pow(0.9, float64(it))
		corr2 := 1 - math.Pow(0.999, float64(it))
		for i := 0; i < dim; i++ {
			gi := grad[i] / n
			s[i] = 0.9*s[i] + 0.1*gi*gi
			v[i] = 0.999*v[i] + 0.001*gi
			w[i] -= 0.3 * (v[i] / corr2) / (math.Sqrt(s[i]/corr1) + 1e-8)
		}
	}
	for i := range w {
		if math.Abs(got[i]-w[i]) > 1e-6 {
			t.Fatalf("weight[%d] = %v, reference %v", i, got[i], w[i])
		}
	}
}

func TestTrainUnderTaskFailuresSameSolution(t *testing.T) {
	// Fig 13(c)'s invariant: failure injection slows training but converges
	// to the identical solution, because pushes are exactly-once.
	run := func(failProb float64) ([]float64, float64) {
		ds := smallDataset(t, 500, 100)
		opt := core.DefaultOptions()
		opt.Executors = 4
		opt.Servers = 4
		opt.TaskFailProb = failProb
		e := core.NewEngine(opt)
		cfg := DefaultConfig()
		cfg.Iterations = 10
		cfg.BatchFraction = 0.5
		var w []float64
		end := e.Run(func(p *simnet.Proc) {
			model, err := Train(p, e, loadRDD(e, ds), ds.Config.Dim, cfg, NewSGD())
			if err != nil {
				t.Error(err)
				return
			}
			w = model.Weights.Pull(p, e.Driver())
		})
		return w, end
	}
	clean, cleanTime := run(0)
	faulty, faultyTime := run(0.2)
	// Retried tasks push later, so server-side float accumulation order can
	// differ by rounding; the solutions must agree to numerical precision.
	for i := range clean {
		if diff := math.Abs(clean[i] - faulty[i]); diff > 1e-9*(1+math.Abs(clean[i])) {
			t.Fatalf("weights diverge at %d: %v vs %v", i, clean[i], faulty[i])
		}
	}
	if faultyTime <= cleanTime {
		t.Fatalf("failures did not cost time: %v vs %v", faultyTime, cleanTime)
	}
}

func TestTrainLBFGSConverges(t *testing.T) {
	ds := smallDataset(t, 1000, 200)
	e := newEngine(4, 4)
	cfg := DefaultLBFGSConfig()
	cfg.Iterations = 15
	var trace *core.Trace
	var w []float64
	e.Run(func(p *simnet.Proc) {
		model, err := TrainLBFGS(p, e, loadRDD(e, ds), ds.Config.Dim, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		trace = model.Trace
		w = model.Weights.Pull(p, e.Driver())
	})
	if trace.Values[0] < trace.Final() {
		t.Fatalf("L-BFGS loss rose: %v -> %v", trace.Values[0], trace.Final())
	}
	final := EvalLoss(Logistic, ds.Instances, w)
	if final > 0.5 {
		t.Fatalf("L-BFGS final loss %v too high", final)
	}
}

func TestTrainValidation(t *testing.T) {
	ds := smallDataset(t, 100, 50)
	e := newEngine(2, 2)
	e.Run(func(p *simnet.Proc) {
		_, err := Train(p, e, loadRDD(e, ds), ds.Config.Dim, Config{}, NewSGD())
		if err == nil {
			t.Error("zero iterations accepted")
		}
	})
}

func TestBatchGradientHelpers(t *testing.T) {
	sv1, _ := linalg.NewSparse([]int{0, 2}, []float64{1, 1})
	sv2, _ := linalg.NewSparse([]int{2, 5}, []float64{2, 1})
	rows := []data.Instance{{Features: sv1, Label: 1}, {Features: sv2, Label: 0}}
	idx := DistinctIndices(rows)
	want := []int{0, 2, 5}
	if len(idx) != 3 {
		t.Fatalf("idx = %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
	if TotalNnz(rows) != 4 {
		t.Fatalf("TotalNnz = %d", TotalNnz(rows))
	}
	grad, loss := BatchGradient(Logistic, rows, func(int) float64 { return 0 })
	if loss != 2*math.Ln2 {
		t.Fatalf("loss at zero weights = %v, want 2ln2", loss)
	}
	// At w=0: p=0.5; row1 grad = (0.5-1)*x, row2 grad = 0.5*x.
	if math.Abs(grad[0]-(-0.5)) > 1e-12 || math.Abs(grad[2]-0.5) > 1e-12 || math.Abs(grad[5]-0.5) > 1e-12 {
		t.Fatalf("grad = %v", grad)
	}
}

func TestHingeGradientZeroWhenMarginMet(t *testing.T) {
	sv, _ := linalg.NewSparse([]int{0}, []float64{1})
	rows := []data.Instance{{Features: sv, Label: 1}}
	grad, loss := BatchGradient(Hinge, rows, func(int) float64 { return 5 }) // margin 5 > 1
	if len(grad) != 0 || loss != 0 {
		t.Fatalf("grad=%v loss=%v, want empty/0", grad, loss)
	}
}

func TestTrainFTRLConvergesAndSparsifies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 60
	cfg.BatchFraction = 0.3
	_, w, ds := trainWith(t, NewFTRL(), cfg)
	final := EvalLoss(Logistic, ds.Instances, w)
	if final >= math.Ln2 {
		t.Fatalf("FTRL did not improve: %v", final)
	}
	// FTRL's L1 must produce exact zeros on a meaningful share of the
	// dimensions (the model is sparser than the SGD one).
	zeros := 0
	for _, v := range w {
		if v == 0 {
			zeros++
		}
	}
	if zeros < len(w)/10 {
		t.Fatalf("FTRL produced only %d/%d exact zeros; L1 not biting", zeros, len(w))
	}
}

func TestFTRLMatchesSingleNodeReference(t *testing.T) {
	ds := smallDataset(t, 200, 80)
	iters := 4
	cfg := DefaultConfig()
	cfg.Iterations = iters
	cfg.BatchFraction = 1.0

	e := newEngine(3, 4)
	opt := NewFTRL()
	var got []float64
	e.Run(func(p *simnet.Proc) {
		model, err := Train(p, e, loadRDD(e, ds), ds.Config.Dim, cfg, opt)
		if err != nil {
			t.Error(err)
			return
		}
		got = model.Weights.Pull(p, e.Driver())
	})

	dim := ds.Config.Dim
	w := make([]float64, dim)
	z := make([]float64, dim)
	n := make([]float64, dim)
	for it := 0; it < iters; it++ {
		grad := make([]float64, dim)
		for _, inst := range ds.Instances {
			pr := linalg.Sigmoid(inst.Features.DotDense(w))
			inst.Features.AddToDense(grad, pr-inst.Label)
		}
		scale := 1.0 / float64(len(ds.Instances))
		for i := 0; i < dim; i++ {
			gi := grad[i] * scale
			sigma := (math.Sqrt(n[i]+gi*gi) - math.Sqrt(n[i])) / opt.Alpha
			z[i] += gi - sigma*w[i]
			n[i] += gi * gi
			if math.Abs(z[i]) <= opt.Lambda1 {
				w[i] = 0
				continue
			}
			sign := 1.0
			if z[i] < 0 {
				sign = -1
			}
			w[i] = -(z[i] - sign*opt.Lambda1) / ((opt.Beta+math.Sqrt(n[i]))/opt.Alpha + opt.Lambda2)
		}
	}
	for i := range w {
		if math.Abs(got[i]-w[i]) > 1e-9 {
			t.Fatalf("FTRL weight[%d] = %v, reference %v", i, got[i], w[i])
		}
	}
}

func TestServerCrashMidTrainingRecoversFromCheckpoint(t *testing.T) {
	// The paper's Section 5.3 server-failure story, end to end: train with
	// periodic checkpoints, crash a server halfway, recover it from the
	// checkpoint, keep training — the job completes and the model still
	// converges (losing only the crashed shard's post-checkpoint updates).
	ds := smallDataset(t, 1500, 400)
	e := newEngine(4, 4)
	cfg := DefaultConfig()
	cfg.Iterations = 15
	cfg.BatchFraction = 0.4
	cfg.CheckpointEvery = 5
	var final float64
	e.Run(func(p *simnet.Proc) {
		dataset := loadRDD(e, ds)
		m1, err := Train(p, e, dataset, ds.Config.Dim, cfg, NewSGD())
		if err != nil {
			t.Error(err)
			return
		}
		// Crash and recover a server between the two halves of training.
		e.PS.KillServer(1)
		e.PS.RecoverServer(p, 1)
		// The weights on the recovered server reflect the last checkpoint:
		// pulling must succeed and give a usable model.
		w := m1.Weights.Pull(p, e.Driver())
		final = EvalLoss(Logistic, ds.Instances, w)
	})
	if final >= math.Ln2 {
		t.Fatalf("post-recovery model useless: loss %v", final)
	}
}

func TestCheckpointEveryCostsStoreTraffic(t *testing.T) {
	run := func(every int) float64 {
		ds := smallDataset(t, 300, 200)
		e := newEngine(3, 3)
		cfg := DefaultConfig()
		cfg.Iterations = 9
		cfg.BatchFraction = 0.5
		cfg.CheckpointEvery = every
		e.Run(func(p *simnet.Proc) {
			if _, err := Train(p, e, loadRDD(e, ds), ds.Config.Dim, cfg, NewSGD()); err != nil {
				t.Error(err)
			}
		})
		return e.Cluster.Store.BytesRecv
	}
	if got := run(0); got != 0 {
		t.Fatalf("no-checkpoint run wrote %v bytes to the store", got)
	}
	if got := run(3); got == 0 {
		t.Fatal("checkpointing run wrote nothing to the store")
	}
}

func TestAUC(t *testing.T) {
	mk := func(idx int, label float64) data.Instance {
		sv, _ := linalg.NewSparse([]int{idx}, []float64{1})
		return data.Instance{Features: sv, Label: label}
	}
	// Perfect ranking: weights give positives higher scores.
	w := []float64{-1, 1}
	perfect := []data.Instance{mk(0, 0), mk(0, 0), mk(1, 1), mk(1, 1)}
	if got := AUC(perfect, w); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Inverted ranking.
	if got := AUC(perfect, []float64{1, -1}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All tied scores: AUC 0.5.
	if got := AUC(perfect, []float64{0, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Degenerate single-class input.
	if got := AUC([]data.Instance{mk(0, 1)}, w); !math.IsNaN(got) {
		t.Fatalf("single-class AUC = %v, want NaN", got)
	}
}

func TestTrainedModelAUC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 40
	cfg.BatchFraction = 0.3
	cfg.LearningRate = 0.1
	adam := NewAdam()
	adam.LearningRate = 0.1
	_, w, ds := trainWith(t, adam, cfg)
	if auc := AUC(ds.Instances, w); auc < 0.85 {
		t.Fatalf("trained AUC %v too low", auc)
	}
}

func TestEvalOnClusterMatchesHostEval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 20
	cfg.BatchFraction = 0.4
	ds := smallDataset(t, 1200, 300)
	e := newEngine(4, 4)
	e.Run(func(p *simnet.Proc) {
		dataset := loadRDD(e, ds)
		model, err := Train(p, e, dataset, ds.Config.Dim, cfg, NewSGD())
		if err != nil {
			t.Error(err)
			return
		}
		metrics := EvalOnCluster(p, e, dataset, Logistic, model.Weights)
		w := model.Weights.Pull(p, e.Driver())
		hostLoss := EvalLoss(Logistic, ds.Instances, w)
		hostAcc := Accuracy(ds.Instances, w)
		if metrics.Rows != len(ds.Instances) {
			t.Errorf("rows = %d", metrics.Rows)
		}
		if math.Abs(metrics.Loss-hostLoss) > 1e-9 {
			t.Errorf("cluster loss %v != host loss %v", metrics.Loss, hostLoss)
		}
		if math.Abs(metrics.Accuracy-hostAcc) > 1e-12 {
			t.Errorf("cluster accuracy %v != host accuracy %v", metrics.Accuracy, hostAcc)
		}
	})
}

func TestWeightsSaveLoadRoundTrip(t *testing.T) {
	w := make([]float64, 100)
	w[3], w[40], w[99] = 1.5, -2.25, 1e-9
	var buf bytes.Buffer
	if err := SaveWeights(&buf, w); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 100 {
		t.Fatalf("dim = %d", len(back))
	}
	for i := range w {
		if back[i] != w[i] {
			t.Fatalf("weight[%d] = %v, want %v", i, back[i], w[i])
		}
	}
	// Corrupt inputs rejected.
	if _, err := LoadWeights(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := LoadWeights(bytes.NewReader([]byte(`{"version":1,"dim":2,"indices":[5],"values":[1]}`))); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestWarmStartResumesTraining(t *testing.T) {
	ds := smallDataset(t, 1000, 300)
	cfg := DefaultConfig()
	cfg.Iterations = 15
	cfg.BatchFraction = 0.4

	// Phase 1: train, pull weights.
	e1 := newEngine(4, 4)
	var w1 []float64
	e1.Run(func(p *simnet.Proc) {
		m, err := Train(p, e1, loadRDD(e1, ds), ds.Config.Dim, cfg, NewSGD())
		if err != nil {
			t.Error(err)
			return
		}
		w1 = m.Weights.Pull(p, e1.Driver())
	})
	phase1 := EvalLoss(Logistic, ds.Instances, w1)

	// Phase 2: resume from the phase-1 weights on a fresh engine.
	e2 := newEngine(4, 4)
	cfg2 := cfg
	cfg2.WarmStart = w1
	cfg2.Seed = 99 // different batches
	var w2 []float64
	var firstBatchLoss float64
	e2.Run(func(p *simnet.Proc) {
		m, err := Train(p, e2, loadRDD(e2, ds), ds.Config.Dim, cfg2, NewSGD())
		if err != nil {
			t.Error(err)
			return
		}
		firstBatchLoss = m.Trace.Values[0]
		w2 = m.Weights.Pull(p, e2.Driver())
	})
	if firstBatchLoss >= 0.9*math.Ln2 {
		t.Fatalf("warm start ignored: first batch loss %v near ln2", firstBatchLoss)
	}
	if phase2 := EvalLoss(Logistic, ds.Instances, w2); phase2 > phase1 {
		t.Fatalf("resumed training regressed: %v -> %v", phase1, phase2)
	}

	// Bad warm start rejected.
	e3 := newEngine(2, 2)
	e3.Run(func(p *simnet.Proc) {
		bad := cfg
		bad.WarmStart = make([]float64, 7)
		if _, err := Train(p, e3, loadRDD(e3, ds), ds.Config.Dim, bad, NewSGD()); err == nil {
			t.Error("mismatched warm start accepted")
		}
	})
}

func TestTargetLossStopsEarly(t *testing.T) {
	ds := smallDataset(t, 1000, 300)
	e := newEngine(4, 4)
	cfg := DefaultConfig()
	cfg.Iterations = 200
	cfg.BatchFraction = 0.4
	cfg.TargetLoss = 0.5
	var trace *core.Trace
	e.Run(func(p *simnet.Proc) {
		m, err := Train(p, e, loadRDD(e, ds), ds.Config.Dim, cfg, NewSGD())
		if err != nil {
			t.Error(err)
			return
		}
		trace = m.Trace
	})
	if trace.Len() >= 200 {
		t.Fatalf("target loss did not stop training: %d iterations", trace.Len())
	}
	if trace.Final() > 0.5 {
		t.Fatalf("stopped above target: %v", trace.Final())
	}
}
