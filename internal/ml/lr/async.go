package lr

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/ps"
	"repro/internal/simnet"
)

// AsyncConfig configures SSP training (the extension beyond the paper's BSP
// execution; see internal/ps.SSPClock).
type AsyncConfig struct {
	Config
	// Staleness bounds how many clocks apart the fastest and slowest worker
	// may drift: 0 is BSP lockstep, large values approach fully async.
	Staleness int
}

// cacheStaleness is the cache validity bound an SSP run uses when
// Config.Cache doesn't pin one: a weight cached at a worker's clock c may
// reflect updates no older than the SSP bound already admits, so the cache
// rides the same staleness the clock grants.
func (cfg *AsyncConfig) cacheStaleness() int {
	if cfg.Cache.Staleness > 0 {
		return cfg.Cache.Staleness
	}
	return cfg.Staleness
}

// AsyncModel is the result of SSP training. TrainAsync returns it as soon as
// the workers are spawned; call Wait to block until every worker finishes its
// iteration budget, or stop the simulation early (simnet.RunUntil) and read
// the model state wherever training got to — the pattern the ext-ssp
// experiment uses to measure progress at a fixed wall-clock budget.
type AsyncModel struct {
	Weights *ps.Matrix
	Clock   *ps.SSPClock
	Trace   *core.Trace // mean batch loss indexed by global clock

	group *simnet.Group
}

// Wait blocks until every worker has finished its iterations.
func (m *AsyncModel) Wait(p *simnet.Proc) { m.group.Wait(p) }

// UpdatesApplied returns the total number of worker iterations completed so
// far (the sum of all SSP clocks).
func (m *AsyncModel) UpdatesApplied() int {
	total := 0
	for w := 0; w < m.workers(); w++ {
		total += m.Clock.Clock(w)
	}
	return total
}

func (m *AsyncModel) workers() int { return m.Clock.Workers() }

// TrainAsync trains LR under the Stale Synchronous Parallel model: one
// long-lived process per executor loops over its own partition's
// mini-batches, gated only by the SSP clock — no per-iteration Spark stage
// barrier. Updates are applied server-side as scaled increments. With a
// straggling executor, bounded staleness lets fast workers run ahead instead
// of idling at a barrier.
func TrainAsync(p *simnet.Proc, e *core.Engine, parts [][]data.Instance, dim int, cfg AsyncConfig) (*AsyncModel, error) {
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("lr: iterations must be positive")
	}
	if len(parts) == 0 || len(parts) > len(e.Cluster.Executors) {
		return nil, fmt.Errorf("lr: need 1..%d partitions, got %d", len(e.Cluster.Executors), len(parts))
	}
	mat, err := e.PS.CreateMatrix(p, 1, dim)
	if err != nil {
		return nil, err
	}
	clock := ps.NewSSPClock(p.Sim(), len(parts))
	cost := e.Cluster.Cost

	// Optional worker-side cache: each SSP worker's cache clock ticks with
	// its own SSPClock entry, so the cache's validity window tracks the same
	// bounded staleness the clock grants.
	var cache *ps.CachedClient
	if cfg.Cache != nil {
		ccfg := *cfg.Cache
		ccfg.Staleness = cfg.cacheStaleness()
		cache = ps.NewCachedClient(mat, ccfg)
	}

	lossByClock := make([]float64, cfg.Iterations)
	countByClock := make([]int, cfg.Iterations)

	model := &AsyncModel{Weights: mat, Clock: clock}
	g := p.Sim().NewGroup()
	model.group = g
	for w := range parts {
		w := w
		node := e.Cluster.Executors[w]
		rows := parts[w]
		g.Go(fmt.Sprintf("ssp-worker-%d", w), func(wp *simnet.Proc) {
			rng := linalg.NewRNG(cfg.Seed*13 + uint64(w))
			var buf *ps.PushBuffer
			if cache != nil && cfg.Cache.CombinePushes {
				buf = cache.NewPushBuffer()
			}
			for it := 0; it < cfg.Iterations; it++ {
				clock.WaitTurn(wp, w, it, cfg.Staleness)
				// Sample this worker's mini-batch.
				batch := sampleRows(rows, cfg.BatchFraction, rng)
				if len(batch) > 0 {
					idx := DistinctIndices(batch)
					var vals []float64
					if cache != nil {
						vals = cache.PullRowIndices(wp, node, 0, idx)
					} else {
						vals = mat.PullRowIndices(wp, node, 0, idx)
					}
					local := make(map[int]float64, len(idx))
					for k, i := range idx {
						local[i] = vals[k]
					}
					grad, lossSum := BatchGradient(cfg.Objective, batch, func(i int) float64 { return local[i] })
					node.Compute(wp, cost.GradWork(TotalNnz(batch)))
					// Apply the scaled update directly (async increment).
					eta := cfg.LearningRate / math.Sqrt(float64(it+1)) / float64(len(batch)) / float64(len(parts))
					gi := make([]int, 0, len(grad))
					for i := range grad {
						gi = append(gi, i)
					}
					sort.Ints(gi)
					gv := make([]float64, len(gi))
					for k, i := range gi {
						gv[k] = -eta * grad[i]
					}
					sv, err := linalg.NewSparse(gi, gv)
					if err != nil {
						panic(err)
					}
					if buf != nil {
						if err := buf.Add(0, sv); err != nil {
							panic(err)
						}
						buf.Flush(wp, node)
					} else {
						mat.PushAdd(wp, node, 0, sv)
					}
					lossByClock[it] += lossSum
					countByClock[it] += len(batch)
				}
				clock.Tick(w)
				if cache != nil {
					cache.TickNode(node)
				}
			}
		})
	}
	// Note: TrainAsync does NOT wait; the workers run concurrently with the
	// caller (use model.Wait). A separate observer process fills the trace
	// once the workers finish.
	trace := &core.Trace{Name: fmt.Sprintf("SSP-%d", cfg.Staleness)}
	model.Trace = trace
	p.Sim().Spawn("ssp-trace", func(tp *simnet.Proc) {
		g.Wait(tp)
		for it := 0; it < cfg.Iterations; it++ {
			if countByClock[it] > 0 {
				trace.Add(float64(it), lossByClock[it]/float64(countByClock[it]))
			}
		}
	})
	return model, nil
}

// sampleRows Bernoulli-samples a slice of instances.
func sampleRows(rows []data.Instance, fraction float64, rng *linalg.RNG) []data.Instance {
	if fraction >= 1 {
		return rows
	}
	out := make([]data.Instance, 0, int(float64(len(rows))*fraction)+1)
	for _, r := range rows {
		if rng.Float64() < fraction {
			out = append(out, r)
		}
	}
	return out
}

// FinalWeights pulls the trained async model to the caller.
func (m *AsyncModel) FinalWeights(p *simnet.Proc, from *simnet.Node) []float64 {
	return m.Weights.PullRow(p, from, 0)
}
