package lr

import (
	"math"

	"repro/internal/core"
	"repro/internal/dcv"
	"repro/internal/simnet"
)

// FTRL implements FTRL-Proximal (McMahan et al., KDD'13), the de-facto
// optimizer for CTR models like the paper's motivating Tencent workloads: it
// keeps per-dimension accumulated gradients (z) and squared gradients (n) and
// produces genuinely sparse models through L1 regularization. On PS2 the
// three extra vectors are derived DCVs and the whole update is one
// server-side zip — another instance of "element-wise operations on
// multi-vector ML models".
type FTRL struct {
	Alpha   float64 // per-dimension learning-rate scale
	Beta    float64
	Lambda1 float64 // L1: drives exact zeros
	Lambda2 float64 // L2

	z *dcv.Vector
	n *dcv.Vector
}

// NewFTRL returns FTRL with standard CTR-tuned defaults.
func NewFTRL() *FTRL {
	return &FTRL{Alpha: 0.1, Beta: 1.0, Lambda1: 0.5, Lambda2: 1.0}
}

func (f *FTRL) Name() string { return "FTRL" }

func (f *FTRL) AuxVectors() int { return 2 }

func (f *FTRL) Init(p *simnet.Proc, e *core.Engine, w *dcv.Vector) error {
	var err error
	if f.z, err = w.Derive(); err != nil {
		return err
	}
	if err := f.z.TryFill(p, e.Driver(), 0); err != nil {
		return err
	}
	if f.n, err = w.Derive(); err != nil {
		return err
	}
	return f.n.TryFill(p, e.Driver(), 0)
}

// Step applies the FTRL-Proximal update server-side. Using the mean batch
// gradient as g_t:
//
//	sigma = (sqrt(n + g²) − sqrt(n)) / alpha
//	z    += g − sigma·w
//	n    += g²
//	w     = 0                                     if |z| <= lambda1
//	w     = −(z − sign(z)·lambda1) / ((beta+sqrt(n))/alpha + lambda2)  otherwise
func (f *FTRL) update(batchSize int) func(lo int, rows [][]float64) {
	scale := 1.0 / float64(batchSize)
	alpha, beta, l1, l2 := f.Alpha, f.Beta, f.Lambda1, f.Lambda2
	return func(lo int, rows [][]float64) {
		wt, z, n, g := rows[0], rows[1], rows[2], rows[3]
		for i := range wt {
			gi := g[i] * scale
			sigma := (math.Sqrt(n[i]+gi*gi) - math.Sqrt(n[i])) / alpha
			z[i] += gi - sigma*wt[i]
			n[i] += gi * gi
			if math.Abs(z[i]) <= l1 {
				wt[i] = 0
				continue
			}
			sign := 1.0
			if z[i] < 0 {
				sign = -1
			}
			wt[i] = -(z[i] - sign*l1) / ((beta+math.Sqrt(n[i]))/alpha + l2)
		}
	}
}

func (f *FTRL) Step(p *simnet.Proc, e *core.Engine, w, grad *dcv.Vector, iter, batchSize int) error {
	return w.TryZipMap(p, e.Driver(), e.Cluster.Cost.FlopsPerElem*4, f.update(batchSize), f.z, f.n, grad)
}

// RecordStep records the same 4-vector zip into a fused batch.
func (f *FTRL) RecordStep(e *core.Engine, b *dcv.Batch, w, grad *dcv.Vector, iter, batchSize int) {
	b.ZipMap(w, e.Cluster.Cost.FlopsPerElem*4, f.update(batchSize), f.z, f.n, grad)
}

var (
	_ Optimizer      = (*FTRL)(nil)
	_ FusedOptimizer = (*FTRL)(nil)
)
