package lr

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dcv"
	"repro/internal/linalg"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

// LBFGSConfig configures the L-BFGS trainer (paper Section 5.2.4 lists
// L-BFGS among the implemented optimizers). Unlike the SGD family it uses
// full-batch gradients and keeps a curvature history of m (s, y) pairs, all
// stored as co-located DCVs so the two-loop recursion runs as a sequence of
// server-side dot/axpy operators with only scalars on the wire.
type LBFGSConfig struct {
	Iterations int
	History    int     // m, the number of curvature pairs
	StepSize   float64 // fixed step along the search direction
	Seed       uint64
}

// DefaultLBFGSConfig returns a standard configuration.
func DefaultLBFGSConfig() LBFGSConfig {
	return LBFGSConfig{Iterations: 20, History: 5, StepSize: 0.5, Seed: 42}
}

// TrainLBFGS minimizes the logistic loss with L-BFGS on PS2.
func TrainLBFGS(p *simnet.Proc, e *core.Engine, dataset *rdd.RDD[data.Instance], dim int, cfg LBFGSConfig) (*Model, error) {
	if cfg.Iterations <= 0 || cfg.History <= 0 {
		return nil, fmt.Errorf("lr: invalid L-BFGS config %+v", cfg)
	}
	m := cfg.History
	// Rows: w, grad, prevW, prevG, q, m×s, m×y.
	w, err := e.DCV.Dense(p, dim, 5+2*m)
	if err != nil {
		return nil, err
	}
	driver := e.Driver()
	grad := w.MustDerive()
	prevW := w.MustDerive()
	prevG := w.MustDerive()
	q := w.MustDerive()
	sHist := make([]*dcv.Vector, m)
	yHist := make([]*dcv.Vector, m)
	// All 4+2m working vectors are co-located with w, so one fused request per
	// server zeroes the lot instead of a fan-out per vector.
	init := dcv.NewBatch(w).Zero(grad).Zero(prevW).Zero(prevG).Zero(q)
	for i := 0; i < m; i++ {
		sHist[i] = w.MustDerive()
		yHist[i] = w.MustDerive()
		init.Zero(sHist[i]).Zero(yHist[i])
	}
	if err := init.Run(p, driver); err != nil {
		return nil, err
	}
	rho := make([]float64, m)
	alpha := make([]float64, m)
	pairs := 0 // number of valid history pairs
	next := 0  // ring-buffer position

	trace := &core.Trace{Name: "PS2-LBFGS"}
	cost := e.Cluster.Cost
	total := 0

	fullGradient := func() float64 {
		grad.Zero(p, driver)
		stats := rdd.RunPartitions(p, dataset, 24, func(tc *rdd.TaskContext, part int, rows []data.Instance) batchStat {
			if len(rows) == 0 {
				return batchStat{}
			}
			idx := DistinctIndices(rows)
			vals := w.PullIndices(tc.P, tc.Node, idx)
			local := make(map[int]float64, len(idx))
			for k, i := range idx {
				local[i] = vals[k]
			}
			g, lossSum := BatchGradient(Logistic, rows, func(i int) float64 { return local[i] })
			tc.Charge(cost.GradWork(TotalNnz(rows)))
			tc.Commit()
			gi := make([]int, 0, len(g))
			for i := range g {
				gi = append(gi, i)
			}
			sort.Ints(gi)
			gv := make([]float64, len(gi))
			for k, i := range gi {
				gv[k] = g[i]
			}
			sv, _ := linalg.NewSparse(gi, gv)
			grad.Add(tc.P, tc.Node, sv)
			return batchStat{Loss: lossSum, Count: len(rows)}
		})
		var lossSum float64
		total = 0
		for _, st := range stats {
			lossSum += st.Loss
			total += st.Count
		}
		if total > 0 {
			if err := grad.TryScale(p, driver, 1/float64(total)); err != nil {
				panic(err)
			}
			return lossSum / float64(total)
		}
		return 0
	}

	dot := func(a, b *dcv.Vector) float64 {
		v, err := a.TryDot(p, driver, b)
		if err != nil {
			panic(err)
		}
		return v
	}
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	for it := 0; it < cfg.Iterations; it++ {
		loss := fullGradient()
		trace.Add(p.Now(), loss)
		// The whole bookkeeping block — curvature pair s = w − prevW,
		// y = grad − prevG, the <s, y> reduction, and the prevW/prevG/q
		// snapshots — touches only co-located vectors, so it fuses into one
		// request per server. Ops execute in recorded order on each shard,
		// which keeps the snapshot copies after the subtractions they feed.
		b := dcv.NewBatch(w)
		var sy *dcv.Scalar
		slot := next
		if it > 0 {
			next = (next + 1) % m
			if pairs < m {
				pairs++
			}
			b.CopyFrom(sHist[slot], w).SubVec(sHist[slot], prevW)
			b.CopyFrom(yHist[slot], grad).SubVec(yHist[slot], prevG)
			sy = b.Dot(sHist[slot], yHist[slot])
		}
		b.CopyFrom(prevW, w).CopyFrom(prevG, grad)
		// Two-loop recursion over co-located DCVs; q starts at the gradient.
		b.CopyFrom(q, grad)
		must(b.Run(p, driver))
		if it > 0 {
			if sy.Value() <= 1e-12 {
				// Skip non-curvature pairs (can happen with fixed steps).
				pairs--
				next = slot
			} else {
				rho[slot] = 1 / sy.Value()
			}
		}
		for k := 0; k < pairs; k++ {
			i := (next - 1 - k + 2*m) % m
			alpha[i] = rho[i] * dot(sHist[i], q)
			must(q.TryAxpy(p, driver, -alpha[i], yHist[i]))
		}
		if pairs > 0 {
			newest := (next - 1 + m) % m
			yy := dot(yHist[newest], yHist[newest])
			if yy > 1e-12 {
				must(q.TryScale(p, driver, 1/(rho[newest]*yy)))
			}
		}
		for k := pairs - 1; k >= 0; k-- {
			i := (next - 1 - k + 2*m) % m
			beta := rho[i] * dot(yHist[i], q)
			must(q.TryAxpy(p, driver, alpha[i]-beta, sHist[i]))
		}
		// Descend along -q with a fixed step.
		must(w.TryAxpy(p, driver, -cfg.StepSize, q))
	}
	return &Model{Weights: w, Trace: trace}, nil
}
