package lr

import (
	"encoding/json"
	"fmt"
	"io"
)

// weightsFile is the on-disk JSON layout for a linear model: only nonzero
// weights are stored, so FTRL's L1-sparse models serialize compactly.
type weightsFile struct {
	Version int       `json:"version"`
	Dim     int       `json:"dim"`
	Indices []int     `json:"indices"`
	Values  []float64 `json:"values"`
}

// SaveWeights writes a pulled weight vector as sparse JSON.
func SaveWeights(w io.Writer, weights []float64) error {
	wf := weightsFile{Version: 1, Dim: len(weights)}
	for i, v := range weights {
		if v != 0 {
			wf.Indices = append(wf.Indices, i)
			wf.Values = append(wf.Values, v)
		}
	}
	return json.NewEncoder(w).Encode(wf)
}

// LoadWeights reads a weight vector written by SaveWeights.
func LoadWeights(r io.Reader) ([]float64, error) {
	var wf weightsFile
	if err := json.NewDecoder(r).Decode(&wf); err != nil {
		return nil, fmt.Errorf("lr: decode weights: %w", err)
	}
	if wf.Version != 1 {
		return nil, fmt.Errorf("lr: unsupported weights version %d", wf.Version)
	}
	if wf.Dim <= 0 || len(wf.Indices) != len(wf.Values) {
		return nil, fmt.Errorf("lr: corrupt weights file (dim=%d, %d indices, %d values)", wf.Dim, len(wf.Indices), len(wf.Values))
	}
	weights := make([]float64, wf.Dim)
	for k, i := range wf.Indices {
		if i < 0 || i >= wf.Dim {
			return nil, fmt.Errorf("lr: weight index %d out of range [0,%d)", i, wf.Dim)
		}
		weights[i] = wf.Values[k]
	}
	return weights, nil
}
