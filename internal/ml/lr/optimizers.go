package lr

import (
	"math"

	"repro/internal/core"
	"repro/internal/dcv"
	"repro/internal/simnet"
)

// SGD is plain mini-batch gradient descent: w -= lr/|B| * g, one server-side
// axpy, no auxiliary state.
type SGD struct {
	LearningRate float64
	// Decay applies 1/sqrt(t) step decay when true (helps noisy objectives).
	Decay bool
}

// NewSGD returns SGD with the paper's learning rate.
func NewSGD() *SGD { return &SGD{LearningRate: DefaultConfig().LearningRate, Decay: true} }

func (s *SGD) Name() string { return "SGD" }

func (s *SGD) AuxVectors() int { return 0 }

func (s *SGD) Init(*simnet.Proc, *core.Engine, *dcv.Vector) error { return nil }

func (s *SGD) Step(p *simnet.Proc, e *core.Engine, w, grad *dcv.Vector, iter, batchSize int) error {
	eta := s.LearningRate
	if s.Decay {
		eta /= math.Sqrt(float64(iter))
	}
	return w.TryAxpy(p, e.Driver(), -eta/float64(batchSize), grad)
}

// RecordStep records the same axpy into a fused batch.
func (s *SGD) RecordStep(e *core.Engine, b *dcv.Batch, w, grad *dcv.Vector, iter, batchSize int) {
	eta := s.LearningRate
	if s.Decay {
		eta /= math.Sqrt(float64(iter))
	}
	b.Axpy(w, -eta/float64(batchSize), grad)
}

// Adam implements the paper's Section 3.1 Example 1: the model is four
// co-located DCVs (weight, first-moment, second-moment, gradient) and the
// update is one server-side zip over them — Figure 3's
// weight.zip(velocity, square, gradient).mapPartition{updateModel}.
type Adam struct {
	LearningRate float64
	Beta1        float64
	Beta2        float64
	Epsilon      float64

	velocity *dcv.Vector
	square   *dcv.Vector
}

// NewAdam returns Adam with the paper's Table 4 hyperparameters.
func NewAdam() *Adam {
	cfg := DefaultConfig()
	return &Adam{LearningRate: cfg.LearningRate, Beta1: cfg.Beta1, Beta2: cfg.Beta2, Epsilon: cfg.Epsilon}
}

func (a *Adam) Name() string { return "Adam" }

func (a *Adam) AuxVectors() int { return 2 }

func (a *Adam) Init(p *simnet.Proc, e *core.Engine, w *dcv.Vector) error {
	var err error
	if a.velocity, err = w.Derive(); err != nil {
		return err
	}
	if err := a.velocity.TryFill(p, e.Driver(), 0); err != nil {
		return err
	}
	if a.square, err = w.Derive(); err != nil {
		return err
	}
	return a.square.TryFill(p, e.Driver(), 0)
}

// update returns the Adam update kernel shared by Step and RecordStep.
func (a *Adam) update(iter, batchSize int) func(lo int, rows [][]float64) {
	t := float64(iter)
	scale := 1.0 / float64(batchSize)
	corr1 := 1 - math.Pow(a.Beta1, t)
	corr2 := 1 - math.Pow(a.Beta2, t)
	eta, b1, b2, eps := a.LearningRate, a.Beta1, a.Beta2, a.Epsilon
	return func(lo int, rows [][]float64) {
		wt, v, s, g := rows[0], rows[1], rows[2], rows[3]
		for i := range wt {
			gi := g[i] * scale
			s[i] = b1*s[i] + (1-b1)*gi*gi
			v[i] = b2*v[i] + (1-b2)*gi
			sHat := s[i] / corr1
			vHat := v[i] / corr2
			wt[i] -= eta * vHat / (math.Sqrt(sHat) + eps)
		}
	}
}

func (a *Adam) Step(p *simnet.Proc, e *core.Engine, w, grad *dcv.Vector, iter, batchSize int) error {
	return w.TryZipMap(p, e.Driver(), e.Cluster.Cost.FlopsPerElem*3,
		a.update(iter, batchSize), a.velocity, a.square, grad)
}

// RecordStep records the same 4-vector zip into a fused batch.
func (a *Adam) RecordStep(e *core.Engine, b *dcv.Batch, w, grad *dcv.Vector, iter, batchSize int) {
	b.ZipMap(w, e.Cluster.Cost.FlopsPerElem*3, a.update(iter, batchSize), a.velocity, a.square, grad)
}

// Adagrad keeps a per-dimension accumulated squared gradient (paper Section
// 5.2.4 lists it among the implemented optimizers).
type Adagrad struct {
	LearningRate float64
	Epsilon      float64

	accum *dcv.Vector
}

// NewAdagrad returns Adagrad with a standard learning rate.
func NewAdagrad() *Adagrad { return &Adagrad{LearningRate: 0.618, Epsilon: 1e-8} }

func (a *Adagrad) Name() string { return "Adagrad" }

func (a *Adagrad) AuxVectors() int { return 1 }

func (a *Adagrad) Init(p *simnet.Proc, e *core.Engine, w *dcv.Vector) error {
	var err error
	if a.accum, err = w.Derive(); err != nil {
		return err
	}
	return a.accum.TryFill(p, e.Driver(), 0)
}

func (a *Adagrad) update(batchSize int) func(lo int, rows [][]float64) {
	scale := 1.0 / float64(batchSize)
	eta, eps := a.LearningRate, a.Epsilon
	return func(lo int, rows [][]float64) {
		wt, acc, g := rows[0], rows[1], rows[2]
		for i := range wt {
			gi := g[i] * scale
			acc[i] += gi * gi
			wt[i] -= eta * gi / (math.Sqrt(acc[i]) + eps)
		}
	}
}

func (a *Adagrad) Step(p *simnet.Proc, e *core.Engine, w, grad *dcv.Vector, iter, batchSize int) error {
	return w.TryZipMap(p, e.Driver(), e.Cluster.Cost.FlopsPerElem*2, a.update(batchSize), a.accum, grad)
}

// RecordStep records the same zip into a fused batch.
func (a *Adagrad) RecordStep(e *core.Engine, b *dcv.Batch, w, grad *dcv.Vector, iter, batchSize int) {
	b.ZipMap(w, e.Cluster.Cost.FlopsPerElem*2, a.update(batchSize), a.accum, grad)
}

// RMSProp keeps an exponentially decaying squared-gradient average.
type RMSProp struct {
	LearningRate float64
	Rho          float64
	Epsilon      float64

	mean *dcv.Vector
}

// NewRMSProp returns RMSProp with standard parameters.
func NewRMSProp() *RMSProp { return &RMSProp{LearningRate: 0.1, Rho: 0.9, Epsilon: 1e-8} }

func (r *RMSProp) Name() string { return "RMSProp" }

func (r *RMSProp) AuxVectors() int { return 1 }

func (r *RMSProp) Init(p *simnet.Proc, e *core.Engine, w *dcv.Vector) error {
	var err error
	if r.mean, err = w.Derive(); err != nil {
		return err
	}
	return r.mean.TryFill(p, e.Driver(), 0)
}

func (r *RMSProp) update(batchSize int) func(lo int, rows [][]float64) {
	scale := 1.0 / float64(batchSize)
	eta, rho, eps := r.LearningRate, r.Rho, r.Epsilon
	return func(lo int, rows [][]float64) {
		wt, m, g := rows[0], rows[1], rows[2]
		for i := range wt {
			gi := g[i] * scale
			m[i] = rho*m[i] + (1-rho)*gi*gi
			wt[i] -= eta * gi / (math.Sqrt(m[i]) + eps)
		}
	}
}

func (r *RMSProp) Step(p *simnet.Proc, e *core.Engine, w, grad *dcv.Vector, iter, batchSize int) error {
	return w.TryZipMap(p, e.Driver(), e.Cluster.Cost.FlopsPerElem*2, r.update(batchSize), r.mean, grad)
}

// RecordStep records the same zip into a fused batch.
func (r *RMSProp) RecordStep(e *core.Engine, b *dcv.Batch, w, grad *dcv.Vector, iter, batchSize int) {
	b.ZipMap(w, e.Cluster.Cost.FlopsPerElem*2, r.update(batchSize), r.mean, grad)
}

var (
	_ FusedOptimizer = (*SGD)(nil)
	_ FusedOptimizer = (*Adam)(nil)
	_ FusedOptimizer = (*Adagrad)(nil)
	_ FusedOptimizer = (*RMSProp)(nil)
)
