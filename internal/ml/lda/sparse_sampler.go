package lda

import (
	"repro/internal/linalg"
)

// This file implements the SparseLDA sampling decomposition (Yao, Mimno &
// McCallum, KDD'09) — the technique behind large-K LDA systems such as the
// paper authors' own LDA* (the paper's reference [29]). The collapsed Gibbs
// conditional factors into three buckets
//
//	p(z=k) ∝ (n_dk + α)(n_wk + β)/(n_k + Vβ)
//	       =  αβ/(n_k+Vβ)                    «s: smoothing, dense but tiny»
//	       +  n_dk·β/(n_k+Vβ)                «r: nonzero only where n_dk > 0»
//	       +  (α+n_dk)·n_wk/(n_k+Vβ)         «q: nonzero only where n_wk > 0»
//
// with all three masses maintained incrementally, so a token resample walks
// the document's and the word's nonzero topics instead of all K. The sampler
// draws from exactly the same distribution as the standard one — only the
// arithmetic is reorganized — so statistical behaviour is unchanged while
// large-K sampling gets much cheaper.

// nzIndex tracks the nonzero entries of a K-vector of counts as a compact
// list for O(nnz) iteration with O(1) add/remove.
type nzIndex struct {
	items []int32
	pos   []int32
}

func newNZIndex(counts []float64, k int) *nzIndex {
	idx := &nzIndex{pos: make([]int32, k)}
	for i := range idx.pos {
		idx.pos[i] = -1
	}
	for i, c := range counts {
		if c > 0 {
			idx.add(i)
		}
	}
	return idx
}

func newNZIndexInt(counts []int32, k int) *nzIndex {
	idx := &nzIndex{pos: make([]int32, k)}
	for i := range idx.pos {
		idx.pos[i] = -1
	}
	for i, c := range counts {
		if c > 0 {
			idx.add(i)
		}
	}
	return idx
}

func (idx *nzIndex) add(k int) {
	if idx.pos[k] >= 0 {
		return
	}
	idx.pos[k] = int32(len(idx.items))
	idx.items = append(idx.items, int32(k))
}

func (idx *nzIndex) remove(k int) {
	i := idx.pos[k]
	if i < 0 {
		return
	}
	last := int32(len(idx.items) - 1)
	moved := idx.items[last]
	idx.items[i] = moved
	idx.pos[moved] = i
	idx.items = idx.items[:last]
	idx.pos[k] = -1
}

// sparseSweeper holds the partition-wide incremental state of a SparseLDA
// sweep: local topic totals, the smoothing bucket, and per-word nonzero
// indices over the local count copies.
type sparseSweeper struct {
	K         int
	alpha, vb float64
	beta      float64
	ltot      []float64
	counts    map[int][]float64
	wordIdx   map[int]*nzIndex
	sTerm     []float64
	sSum      float64
	// Per-document state, reset by beginDoc.
	rTerm []float64
	rSum  float64
	qcoef []float64
	ndk   []int32
	dIdx  *nzIndex
}

func newSparseSweeper(K int, alpha, beta, vb float64, counts map[int][]float64, ltot []float64) *sparseSweeper {
	sw := &sparseSweeper{
		K: K, alpha: alpha, beta: beta, vb: vb,
		ltot: ltot, counts: counts,
		wordIdx: make(map[int]*nzIndex, len(counts)),
		sTerm:   make([]float64, K),
		rTerm:   make([]float64, K),
		qcoef:   make([]float64, K),
	}
	for w, wc := range counts {
		sw.wordIdx[w] = newNZIndex(wc, K)
	}
	for k := 0; k < K; k++ {
		sw.sTerm[k] = alpha * beta / (ltot[k] + vb)
		sw.sSum += sw.sTerm[k]
	}
	return sw
}

// beginDoc installs a document's topic counts and rebuilds the r bucket and
// the q coefficients (O(K), amortized over the document's tokens).
func (sw *sparseSweeper) beginDoc(ndk []int32, dIdx *nzIndex) {
	sw.ndk = ndk
	sw.dIdx = dIdx
	sw.rSum = 0
	for k := 0; k < sw.K; k++ {
		denom := sw.ltot[k] + sw.vb
		sw.rTerm[k] = float64(ndk[k]) * sw.beta / denom
		sw.rSum += sw.rTerm[k]
		sw.qcoef[k] = (sw.alpha + float64(ndk[k])) / denom
	}
}

// refresh recomputes every k-indexed term after ltot[k] or ndk[k] changed.
func (sw *sparseSweeper) refresh(k int) {
	denom := sw.ltot[k] + sw.vb
	sw.sSum -= sw.sTerm[k]
	sw.sTerm[k] = sw.alpha * sw.beta / denom
	sw.sSum += sw.sTerm[k]
	sw.rSum -= sw.rTerm[k]
	sw.rTerm[k] = float64(sw.ndk[k]) * sw.beta / denom
	sw.rSum += sw.rTerm[k]
	sw.qcoef[k] = (sw.alpha + float64(sw.ndk[k])) / denom
}

// remove takes the current token out of topic k.
func (sw *sparseSweeper) remove(w, k int) {
	wc := sw.counts[w]
	sw.ndk[k]--
	wc[k]--
	sw.ltot[k]--
	if sw.ndk[k] == 0 {
		sw.dIdx.remove(k)
	}
	if wc[k] == 0 {
		sw.wordIdx[w].remove(k)
	}
	sw.refresh(k)
}

// insert puts the token into topic k.
func (sw *sparseSweeper) insert(w, k int) {
	wc := sw.counts[w]
	sw.ndk[k]++
	wc[k]++
	sw.ltot[k]++
	if sw.ndk[k] == 1 {
		sw.dIdx.add(k)
	}
	if wc[k] == 1 {
		sw.wordIdx[w].add(k)
	}
	sw.refresh(k)
}

// sample draws the token's new topic and returns it with the total
// unnormalized mass (for log-likelihood bookkeeping).
func (sw *sparseSweeper) sample(rng *linalg.RNG, w int) (int, float64) {
	wc := sw.counts[w]
	widx := sw.wordIdx[w]
	var qSum float64
	for _, k := range widx.items {
		qSum += sw.qcoef[k] * wc[k]
	}
	total := sw.sSum + sw.rSum + qSum
	u := rng.Float64() * total
	switch {
	case u < qSum:
		acc := 0.0
		for _, k := range widx.items {
			acc += sw.qcoef[k] * wc[k]
			if u <= acc {
				return int(k), total
			}
		}
		if n := len(widx.items); n > 0 {
			return int(widx.items[n-1]), total
		}
	case u < qSum+sw.rSum:
		u -= qSum
		acc := 0.0
		for _, k := range sw.dIdx.items {
			acc += sw.rTerm[k]
			if u <= acc {
				return int(k), total
			}
		}
		if n := len(sw.dIdx.items); n > 0 {
			return int(sw.dIdx.items[n-1]), total
		}
	}
	u -= qSum + sw.rSum
	acc := 0.0
	for k := 0; k < sw.K; k++ {
		acc += sw.sTerm[k]
		if u <= acc {
			return k, total
		}
	}
	return sw.K - 1, total
}
