package lda

import (
	"encoding/json"
	"fmt"
	"io"
)

// topicFile is the on-disk JSON layout: per-topic sparse word counts plus
// totals, enough to reconstruct φ and to seed further training.
type topicFile struct {
	Version int         `json:"version"`
	Topics  int         `json:"topics"`
	Vocab   int         `json:"vocab"`
	Alpha   float64     `json:"alpha"`
	Totals  []float64   `json:"totals"`
	Words   [][]int     `json:"words"`  // per topic: word ids with nonzero counts
	Counts  [][]float64 `json:"counts"` // aligned counts
}

// Save writes the topic-word counts as sparse JSON (host-side; reads shard
// memory directly).
func (m *Model) Save(w io.Writer) error {
	tf := topicFile{Version: 1, Topics: m.Topics, Vocab: m.Vocab, Alpha: m.alpha,
		Totals: m.Totals, Words: make([][]int, m.Topics), Counts: make([][]float64, m.Topics)}
	row := make([]float64, m.Vocab)
	for k := 0; k < m.Topics; k++ {
		for s := 0; s < m.WordTopic.Part.NumServers(); s++ {
			sh := m.WordTopic.ShardOf(s)
			sh.Scatter(sh.Rows[k], row)
		}
		for word, c := range row {
			if c != 0 {
				tf.Words[k] = append(tf.Words[k], word)
				tf.Counts[k] = append(tf.Counts[k], c)
			}
		}
	}
	return json.NewEncoder(w).Encode(tf)
}

// SavedModel is a deserialized topic model usable for host-side evaluation
// (Phi-style distributions, top words) without a running cluster.
type SavedModel struct {
	Topics int
	Vocab  int
	Alpha  float64
	Totals []float64
	NWT    [][]float64 // dense [topic][word] counts
}

// Load reads a model written by Save.
func Load(r io.Reader) (*SavedModel, error) {
	var tf topicFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, fmt.Errorf("lda: decode model: %w", err)
	}
	if tf.Version != 1 {
		return nil, fmt.Errorf("lda: unsupported model version %d", tf.Version)
	}
	if tf.Topics <= 0 || tf.Vocab <= 0 || len(tf.Totals) != tf.Topics ||
		len(tf.Words) != tf.Topics || len(tf.Counts) != tf.Topics {
		return nil, fmt.Errorf("lda: corrupt model header")
	}
	sm := &SavedModel{Topics: tf.Topics, Vocab: tf.Vocab, Alpha: tf.Alpha,
		Totals: tf.Totals, NWT: make([][]float64, tf.Topics)}
	for k := 0; k < tf.Topics; k++ {
		if len(tf.Words[k]) != len(tf.Counts[k]) {
			return nil, fmt.Errorf("lda: topic %d words/counts mismatch", k)
		}
		row := make([]float64, tf.Vocab)
		for i, word := range tf.Words[k] {
			if word < 0 || word >= tf.Vocab {
				return nil, fmt.Errorf("lda: topic %d word %d out of vocab", k, word)
			}
			row[word] = tf.Counts[k][i]
		}
		sm.NWT[k] = row
	}
	return sm, nil
}

// Phi returns the smoothed topic-word distributions of a saved model.
func (sm *SavedModel) Phi(beta float64) [][]float64 {
	phi := make([][]float64, sm.Topics)
	vb := float64(sm.Vocab) * beta
	for k := range phi {
		row := make([]float64, sm.Vocab)
		denom := sm.Totals[k] + vb
		for w, c := range sm.NWT[k] {
			row[w] = (c + beta) / denom
		}
		phi[k] = row
	}
	return phi
}
