package lda

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

func newEngine(executors, servers int) *core.Engine {
	opt := core.DefaultOptions()
	opt.Executors = executors
	opt.Servers = servers
	return core.NewEngine(opt)
}

func smallCorpus(t *testing.T) *data.Corpus {
	t.Helper()
	c, err := data.GenerateCorpus(data.CorpusConfig{
		Docs: 400, Vocab: 800, MeanDocLen: 50, TrueTopics: 8, Concentrate: 0.05, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func trainSmall(t *testing.T, iterations int) (*Model, *data.Corpus, *core.Engine, *simnet.Proc) {
	t.Helper()
	c := smallCorpus(t)
	e := newEngine(4, 4)
	cfg := DefaultConfig()
	cfg.Topics = 8
	cfg.Iterations = iterations
	var model *Model
	e.Run(func(p *simnet.Proc) {
		docs := rdd.FromSlices(e.RDD, data.PartitionDocs(c.Docs, 4)).Cache()
		m, err := Train(p, e, docs, c.Config.Vocab, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	return model, c, e, nil
}

func TestTrainLikelihoodRises(t *testing.T) {
	model, _, _, _ := trainSmall(t, 12)
	if model.Trace.Len() != 12 {
		t.Fatalf("trace samples = %d", model.Trace.Len())
	}
	first, last := model.Trace.Values[0], model.Trace.Final()
	if last <= first {
		t.Fatalf("log-likelihood did not rise: %v -> %v", first, last)
	}
}

func TestCountsConservationInvariant(t *testing.T) {
	// After training: (1) every word-topic count is non-negative, (2) the
	// matrix total equals the corpus token count, (3) the tracked topic
	// totals equal the matrix row sums.
	model, c, _, _ := trainSmall(t, 5)
	var rowSums []float64
	var total float64
	for k := 0; k < model.Topics; k++ {
		var rs float64
		for s := 0; s < model.WordTopic.Part.NumServers(); s++ {
			sh := model.WordTopic.ShardOf(s)
			for _, v := range sh.Rows[k] {
				if v < -1e-9 {
					t.Fatalf("negative count %v in topic %d", v, k)
				}
				rs += v
			}
		}
		rowSums = append(rowSums, rs)
		total += rs
	}
	if math.Abs(total-float64(c.Tokens)) > 1e-6 {
		t.Fatalf("matrix total %v != corpus tokens %d", total, c.Tokens)
	}
	for k, rs := range rowSums {
		if math.Abs(rs-model.Totals[k]) > 1e-6 {
			t.Fatalf("topic %d: row sum %v != tracked total %v", k, rs, model.Totals[k])
		}
	}
}

func TestTopicsRecoverStructure(t *testing.T) {
	// The generator concentrates each true topic on a contiguous vocab
	// region; after training, each learned topic's top words should mostly
	// fall in one region.
	model, c, _, _ := trainSmall(t, 15)
	region := c.Config.Vocab / c.Config.TrueTopics
	concentrated := 0
	for k := 0; k < model.Topics; k++ {
		top := topWordsHostSide(model, k, 10)
		counts := map[int]int{}
		for _, w := range top {
			counts[w/region]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		if best >= 7 {
			concentrated++
		}
	}
	if concentrated < model.Topics/2 {
		t.Fatalf("only %d/%d topics concentrated on a vocab region", concentrated, model.Topics)
	}
}

// topWordsHostSide reads the shard memory directly (test-only shortcut).
func topWordsHostSide(m *Model, topic, n int) []int {
	row := make([]float64, m.Vocab)
	for s := 0; s < m.WordTopic.Part.NumServers(); s++ {
		sh := m.WordTopic.ShardOf(s)
		sh.Scatter(sh.Rows[topic], row)
	}
	out := make([]int, 0, n)
	for len(out) < n {
		best, bestV := -1, -1.0
		for w, v := range row {
			if v > bestV {
				best, bestV = w, v
			}
		}
		out = append(out, best)
		row[best] = -2
	}
	return out
}

func TestTrainDeterministic(t *testing.T) {
	run := func() []float64 {
		model, _, _, _ := trainSmall(t, 4)
		return append([]float64(nil), model.Trace.Values...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTrainValidation(t *testing.T) {
	e := newEngine(2, 2)
	e.Run(func(p *simnet.Proc) {
		docs := rdd.FromSlices(e.RDD, [][]data.Document{{{Words: []int32{0, 1}}}})
		if _, err := Train(p, e, docs, 10, Config{Topics: 1, Iterations: 5}); err == nil {
			t.Error("K=1 accepted")
		}
		if _, err := Train(p, e, docs, 0, DefaultConfig()); err == nil {
			t.Error("vocab=0 accepted")
		}
	})
}

func TestCompressionReducesBytes(t *testing.T) {
	bytesFor := func(perCount float64) float64 {
		c := smallCorpus(t)
		e := newEngine(4, 4)
		cfg := DefaultConfig()
		cfg.Topics = 8
		cfg.Iterations = 3
		cfg.CompressedBytesPerCount = perCount
		e.Run(func(p *simnet.Proc) {
			docs := rdd.FromSlices(e.RDD, data.PartitionDocs(c.Docs, 4)).Cache()
			if _, err := Train(p, e, docs, c.Config.Vocab, cfg); err != nil {
				t.Error(err)
			}
		})
		return e.Cluster.TotalBytesOnWire()
	}
	compressed := bytesFor(4)
	raw := bytesFor(8)
	if compressed >= raw {
		t.Fatalf("compression moved more bytes: %v vs %v", compressed, raw)
	}
}

func TestGibbsSweepSamplesValidTopics(t *testing.T) {
	model, _, _, _ := trainSmall(t, 3)
	_ = model
	// Covered implicitly by the conservation invariant; additionally ensure
	// totals are all positive (every topic still holds tokens or zero).
	for k, v := range model.Totals {
		if v < 0 {
			t.Fatalf("topic %d total negative: %v", k, v)
		}
	}
}

func TestRNGIndependentOfHostState(t *testing.T) {
	// Guard against accidental use of global randomness: two engines built
	// back to back must produce identical virtual end times.
	c := smallCorpus(t)
	endFor := func() float64 {
		e := newEngine(3, 3)
		cfg := DefaultConfig()
		cfg.Topics = 6
		cfg.Iterations = 3
		return e.Run(func(p *simnet.Proc) {
			docs := rdd.FromSlices(e.RDD, data.PartitionDocs(c.Docs, 3)).Cache()
			if _, err := Train(p, e, docs, c.Config.Vocab, cfg); err != nil {
				t.Error(err)
			}
		})
	}
	if a, b := endFor(), endFor(); a != b {
		t.Fatalf("virtual end times differ: %v vs %v", a, b)
	}
}

func TestPerplexityImprovesWithTraining(t *testing.T) {
	c := smallCorpus(t)
	heldOut := c.Docs[350:]
	trainDocs := c.Docs[:350]

	perpAfter := func(iterations int) float64 {
		e := newEngine(4, 4)
		cfg := DefaultConfig()
		cfg.Topics = 8
		cfg.Iterations = iterations
		var model *Model
		e.Run(func(p *simnet.Proc) {
			docs := rdd.FromSlices(e.RDD, data.PartitionDocs(trainDocs, 4)).Cache()
			m, err := Train(p, e, docs, c.Config.Vocab, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			model = m
		})
		return Perplexity(model, heldOut, cfg.Alpha, cfg.Beta)
	}
	early := perpAfter(1)
	late := perpAfter(15)
	if math.IsNaN(early) || math.IsNaN(late) {
		t.Fatal("perplexity NaN")
	}
	if late >= early {
		t.Fatalf("held-out perplexity did not improve: %v -> %v", early, late)
	}
	if late >= float64(c.Config.Vocab) {
		t.Fatalf("perplexity %v worse than uniform over vocab", late)
	}
}

func TestPhiIsDistribution(t *testing.T) {
	model, _, _, _ := trainSmall(t, 5)
	phi := model.Phi(0.01)
	for k, row := range phi {
		var sum float64
		for _, v := range row {
			if v <= 0 {
				t.Fatalf("phi[%d] has non-positive entry", k)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("phi[%d] sums to %v", k, sum)
		}
	}
}

func TestCoherenceOfTrainedTopicsBeatsRandom(t *testing.T) {
	model, c, _, _ := trainSmall(t, 15)
	var trained, random float64
	rng := []int{3, 77, 240, 512, 700, 123, 666, 42, 91, 350}
	for k := 0; k < model.Topics; k++ {
		top := model.TopWordsHost(k, 8)
		trained += CoherenceUMass(c.Docs, top, 8)
		random += CoherenceUMass(c.Docs, rng, 8)
	}
	if trained <= random {
		t.Fatalf("trained topic coherence %v not better than random %v", trained, random)
	}
}

func TestCoherenceDegenerate(t *testing.T) {
	if got := CoherenceUMass(nil, []int{1}, 5); got != 0 {
		t.Fatalf("single-word coherence = %v, want 0", got)
	}
}

func TestThetaIsDistribution(t *testing.T) {
	model, _, _, _ := trainSmall(t, 5)
	found := false
	for part := 0; part < 4; part++ {
		for _, row := range model.Theta(part) {
			found = true
			var sum float64
			for _, v := range row {
				if v <= 0 {
					t.Fatal("theta has non-positive entry")
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("theta sums to %v", sum)
			}
		}
	}
	if !found {
		t.Fatal("no theta rows produced")
	}
	if model.Theta(-1) != nil || model.Theta(99) != nil {
		t.Fatal("out-of-range Theta should be nil")
	}
}

func trainWithSampler(t *testing.T, sampler Sampler, iterations int) *Model {
	t.Helper()
	c := smallCorpus(t)
	e := newEngine(4, 4)
	cfg := DefaultConfig()
	cfg.Topics = 8
	cfg.Iterations = iterations
	cfg.Sampler = sampler
	var model *Model
	e.Run(func(p *simnet.Proc) {
		docs := rdd.FromSlices(e.RDD, data.PartitionDocs(c.Docs, 4)).Cache()
		m, err := Train(p, e, docs, c.Config.Vocab, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	return model
}

func TestSparseSamplerConvergesLikeStandard(t *testing.T) {
	std := trainWithSampler(t, SamplerStandard, 12)
	sparse := trainWithSampler(t, SamplerSparse, 12)
	if sparse.Trace.Final() <= sparse.Trace.Values[0] {
		t.Fatalf("sparse sampler likelihood did not rise: %v -> %v",
			sparse.Trace.Values[0], sparse.Trace.Final())
	}
	// Same distribution, different draws: final likelihoods should land in
	// the same neighbourhood.
	gap := math.Abs(std.Trace.Final() - sparse.Trace.Final())
	if gap > 0.15*math.Abs(std.Trace.Final()) {
		t.Fatalf("samplers diverged: standard %v vs sparse %v", std.Trace.Final(), sparse.Trace.Final())
	}
}

func TestSparseSamplerConservesCounts(t *testing.T) {
	model := trainWithSampler(t, SamplerSparse, 5)
	var total float64
	for k := 0; k < model.Topics; k++ {
		var rs float64
		for s := 0; s < model.WordTopic.Part.NumServers(); s++ {
			sh := model.WordTopic.ShardOf(s)
			for _, v := range sh.Rows[k] {
				if v < -1e-9 {
					t.Fatalf("negative count %v in topic %d", v, k)
				}
				rs += v
			}
		}
		if math.Abs(rs-model.Totals[k]) > 1e-6 {
			t.Fatalf("topic %d: row sum %v != tracked total %v", k, rs, model.Totals[k])
		}
		total += rs
	}
	c := smallCorpus(t)
	if math.Abs(total-float64(c.Tokens)) > 1e-6 {
		t.Fatalf("matrix total %v != corpus tokens %d", total, c.Tokens)
	}
}

func TestSparseSamplerCheaperAtLargeK(t *testing.T) {
	// The decomposition's point: per-token compute scales with the nonzero
	// topic counts, not with K, so the gap widens as K grows past the
	// document length. Compare charged executor work at K=200.
	workFor := func(sampler Sampler) float64 {
		c := smallCorpus(t)
		e := newEngine(4, 4)
		cfg := DefaultConfig()
		cfg.Topics = 200
		cfg.Iterations = 3
		cfg.Sampler = sampler
		e.Run(func(p *simnet.Proc) {
			docs := rdd.FromSlices(e.RDD, data.PartitionDocs(c.Docs, 4)).Cache()
			if _, err := Train(p, e, docs, c.Config.Vocab, cfg); err != nil {
				t.Error(err)
			}
		})
		var work float64
		for _, n := range e.Cluster.Executors {
			work += n.WorkDone
		}
		return work
	}
	std := workFor(SamplerStandard)
	sparse := workFor(SamplerSparse)
	if sparse*2 > std {
		t.Fatalf("sparse sampler work (%v) not well below standard (%v) at K=200", sparse, std)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	model, _, _, _ := trainSmall(t, 5)
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Topics != model.Topics || back.Vocab != model.Vocab {
		t.Fatalf("shape mismatch: %dx%d", back.Topics, back.Vocab)
	}
	// Phi from the saved model must match the live model's Phi.
	livePhi := model.Phi(0.01)
	savedPhi := back.Phi(0.01)
	for k := range livePhi {
		for w := range livePhi[k] {
			if math.Abs(livePhi[k][w]-savedPhi[k][w]) > 1e-12 {
				t.Fatalf("phi[%d][%d] = %v vs %v", k, w, savedPhi[k][w], livePhi[k][w])
			}
		}
	}
	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"version":1,"topics":1,"vocab":2,"totals":[1],"words":[[5]],"counts":[[1]]}`))); err == nil {
		t.Fatal("out-of-vocab word accepted")
	}
}
