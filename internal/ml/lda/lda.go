// Package lda implements Latent Dirichlet Allocation trained with collapsed
// Gibbs sampling on PS2 (the paper evaluates LDA on PubMED and Tencent's APP
// corpus, Section 6.3.3). The topic-word count matrix lives on the parameter
// servers as a K-row, V-column matrix — K co-located DCVs, column-partitioned
// over the vocabulary — plus a tiny topic-totals vector. Document-topic
// counts and topic assignments stay on the workers.
//
// Per iteration every worker batch-pulls the topic counts of exactly the
// words its partition contains (sparse pull), resamples its tokens against
// the local copy (the standard approximate-distributed-LDA scheme), and
// pushes count deltas back. PS2's message compression is modelled by
// shipping counts as 4-byte integers instead of 8-byte floats.
package lda

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/ps"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

// Sampler selects the Gibbs sampling arithmetic.
type Sampler int

const (
	// SamplerStandard computes the full K-dimensional conditional per token.
	SamplerStandard Sampler = iota
	// SamplerSparse uses the SparseLDA three-bucket decomposition (the
	// technique behind the authors' LDA*): same distribution, O(nonzero)
	// work per token instead of O(K).
	SamplerSparse
)

// Config holds the LDA hyperparameters; α and β follow the paper's Table 4.
type Config struct {
	Topics     int
	Alpha      float64
	Beta       float64
	Iterations int
	Sampler    Sampler
	// CompressedBytesPerCount is the wire size of one count value. PS2 uses
	// 4 (compressed ints); baselines without compression use 8.
	CompressedBytesPerCount float64
	Seed                    uint64
}

// DefaultConfig returns Table 4 values with a scaled topic count.
func DefaultConfig() Config {
	return Config{Topics: 50, Alpha: 0.5, Beta: 0.01, Iterations: 15, CompressedBytesPerCount: 4, Seed: 23}
}

// Model is the trained topic model.
type Model struct {
	WordTopic *ps.Matrix // Topics rows × Vocab columns of counts
	Totals    []float64  // per-topic token totals (driver copy)
	Vocab     int
	Topics    int
	Trace     *core.Trace // mean per-token log-likelihood (rising)

	states []*partState // worker-local sampler state, kept for Theta
	alpha  float64
}

// partState is the worker-local sampler state for one partition.
type partState struct {
	z   [][]int32 // topic assignment per token per doc
	ndk [][]int32 // doc-topic counts
}

// Train runs collapsed Gibbs sampling over the document RDD.
func Train(p *simnet.Proc, e *core.Engine, docs *rdd.RDD[data.Document], vocab int, cfg Config) (*Model, error) {
	if cfg.Topics < 2 || vocab <= 0 || cfg.Iterations <= 0 {
		return nil, fmt.Errorf("lda: invalid config K=%d V=%d iters=%d", cfg.Topics, vocab, cfg.Iterations)
	}
	if cfg.CompressedBytesPerCount <= 0 {
		cfg.CompressedBytesPerCount = 8
	}
	mat, err := e.PS.CreateMatrix(p, cfg.Topics, vocab)
	if err != nil {
		return nil, err
	}
	model := &Model{WordTopic: mat, Vocab: vocab, Topics: cfg.Topics,
		Totals: make([]float64, cfg.Topics), Trace: &core.Trace{Name: "PS2-LDA"},
		alpha: cfg.Alpha}

	states := make([]*partState, docs.Partitions())
	model.states = states

	// Initialization: assign random topics and push the initial counts.
	totalsDelta := initAssignments(p, e, docs, mat, states, cfg)
	for k := range model.Totals {
		model.Totals[k] += totalsDelta[k]
	}

	for it := 0; it < cfg.Iterations; it++ {
		totals := append([]float64(nil), model.Totals...)
		// Broadcast the topic totals (tiny).
		e.RDD.Broadcast(p, float64(cfg.Topics)*cfg.CompressedBytesPerCount)
		results := rdd.RunPartitions(p, docs, 8*float64(cfg.Topics)+16,
			func(tc *rdd.TaskContext, part int, rows []data.Document) iterResult {
				return gibbsSweep(tc, mat, states[part], rows, totals, vocab, cfg)
			})
		var logLik float64
		var tokens int
		for _, r := range results {
			logLik += r.LogLik
			tokens += r.Tokens
			for k := 0; k < cfg.Topics; k++ {
				model.Totals[k] += r.TotalsDelta[k]
			}
		}
		if tokens > 0 {
			model.Trace.Add(p.Now(), logLik/float64(tokens))
		}
	}
	return model, nil
}

type iterResult struct {
	LogLik      float64
	Tokens      int
	TotalsDelta []float64
}

// initAssignments gives every token a random topic and pushes the initial
// topic-word counts; returns the global topic totals.
func initAssignments(p *simnet.Proc, e *core.Engine, docs *rdd.RDD[data.Document],
	mat *ps.Matrix, states []*partState, cfg Config) []float64 {
	totals := make([]float64, cfg.Topics)
	results := rdd.RunPartitions(p, docs, 8*float64(cfg.Topics),
		func(tc *rdd.TaskContext, part int, rows []data.Document) []float64 {
			st := &partState{z: make([][]int32, len(rows)), ndk: make([][]int32, len(rows))}
			states[part] = st
			rng := linalg.NewRNG(cfg.Seed*31 + uint64(part))
			delta := map[int]map[int]float64{} // topic -> word -> count
			localTotals := make([]float64, cfg.Topics)
			for d, doc := range rows {
				st.z[d] = make([]int32, len(doc.Words))
				st.ndk[d] = make([]int32, cfg.Topics)
				for t, w := range doc.Words {
					k := rng.Intn(cfg.Topics)
					st.z[d][t] = int32(k)
					st.ndk[d][k]++
					m, ok := delta[k]
					if !ok {
						m = map[int]float64{}
						delta[k] = m
					}
					m[int(w)]++
					localTotals[k]++
				}
			}
			tc.Charge(e.Cluster.Cost.ElemWork(len(rows)))
			tc.Commit()
			pushDeltas(tc, mat, delta, cfg)
			return localTotals
		})
	for _, r := range results {
		for k := range totals {
			totals[k] += r[k]
		}
	}
	return totals
}

// pushDeltas ships topic->word count deltas to the servers: one batched
// request per server carrying compressed (topic, word, delta) triplets.
func pushDeltas(tc *rdd.TaskContext, mat *ps.Matrix, delta map[int]map[int]float64, cfg Config) {
	cost := tc.Ctx.Cl.Cost
	// Group triplets by owning server.
	type triplet struct {
		k, w int
		v    float64
	}
	byServer := make([][]triplet, mat.Part.NumServers())
	for k, words := range delta {
		for w, v := range words {
			s := mat.Part.ServerOf(w)
			byServer[s] = append(byServer[s], triplet{k, w, v})
		}
	}
	g := tc.P.Sim().NewGroup()
	for s := range byServer {
		if len(byServer[s]) == 0 {
			continue
		}
		s := s
		g.Go("lda-push", func(cp *simnet.Proc) {
			trips := byServer[s]
			// Deterministic application order.
			sort.Slice(trips, func(a, b int) bool {
				if trips[a].k != trips[b].k {
					return trips[a].k < trips[b].k
				}
				return trips[a].w < trips[b].w
			})
			sh := mat.ShardOf(s)
			srv := mat.ServerNode(s)
			bytes := cost.RequestOverheadB + float64(len(trips))*(8+cfg.CompressedBytesPerCount)
			tc.Node.Send(cp, srv, bytes)
			srv.Compute(cp, cost.RequestHandleWork+cost.ElemWork(len(trips)))
			for _, tr := range trips {
				sh.Rows[tr.k][sh.Local(tr.w)] += tr.v
			}
			srv.Send(cp, tc.Node, cost.RequestOverheadB)
		})
	}
	g.Wait(tc.P)
}

// pullWordCounts batch-pulls the K-dimensional topic vectors of the given
// sorted distinct words: one request per server, compressed values back.
func pullWordCounts(tc *rdd.TaskContext, mat *ps.Matrix, words []int, cfg Config) map[int][]float64 {
	cost := tc.Ctx.Cl.Cost
	out := make(map[int][]float64, len(words))
	split := mat.Part.SplitIndices(words)
	g := tc.P.Sim().NewGroup()
	for s := range split {
		if len(split[s]) == 0 {
			continue
		}
		s := s
		g.Go("lda-pull", func(cp *simnet.Proc) {
			idx := split[s]
			sh := mat.ShardOf(s)
			srv := mat.ServerNode(s)
			tc.Node.Send(cp, srv, cost.RequestOverheadB+4*float64(len(idx)))
			srv.Compute(cp, cost.RequestHandleWork+cost.ElemWork(len(idx)*mat.Rows))
			srv.Send(cp, tc.Node, cost.RequestOverheadB+float64(len(idx)*mat.Rows)*cfg.CompressedBytesPerCount)
			for _, w := range idx {
				vec := make([]float64, mat.Rows)
				for k := 0; k < mat.Rows; k++ {
					vec[k] = sh.Rows[k][sh.Local(w)]
				}
				out[w] = vec
			}
		})
	}
	g.Wait(tc.P)
	return out
}

// gibbsSweep resamples every token of a partition once against a local
// snapshot of the word-topic counts and pushes the deltas.
func gibbsSweep(tc *rdd.TaskContext, mat *ps.Matrix, st *partState, rows []data.Document,
	totals []float64, vocab int, cfg Config) iterResult {
	cost := tc.Ctx.Cl.Cost
	K := cfg.Topics
	words := distinctWords(rows)
	counts := pullWordCounts(tc, mat, words, cfg)
	// Commit before mutating the worker-local sampler state: a doomed retry
	// re-pulls but must not double-apply assignment changes.
	tc.Commit()

	rng := linalg.NewRNG(cfg.Seed*101 + uint64(tc.Part)*13 + uint64(tc.Attempt))
	localTotals := append([]float64(nil), totals...)
	delta := map[int]map[int]float64{}
	addDelta := func(k, w int, v float64) {
		m, ok := delta[k]
		if !ok {
			m = map[int]float64{}
			delta[k] = m
		}
		m[w] += v
	}
	probs := make([]float64, K)
	var logLik float64
	tokens := 0
	vb := float64(vocab) * cfg.Beta
	if cfg.Sampler == SamplerSparse {
		return sparseSweep(tc, mat, st, rows, rng, counts, localTotals, totals, vb, delta, addDelta, cfg)
	}
	for d, doc := range rows {
		docLen := float64(len(doc.Words))
		for t, w := range doc.Words {
			wc := counts[int(w)]
			old := int(st.z[d][t])
			// Remove the token from the model.
			st.ndk[d][old]--
			wc[old]--
			localTotals[old]--
			addDelta(old, int(w), -1)
			// Sample a new topic.
			var sum float64
			for k := 0; k < K; k++ {
				pk := (float64(st.ndk[d][k]) + cfg.Alpha) * (wc[k] + cfg.Beta) / (localTotals[k] + vb)
				if pk < 0 {
					pk = 0
				}
				probs[k] = pk
				sum += pk
			}
			u := rng.Float64() * sum
			newK := K - 1
			acc := 0.0
			for k := 0; k < K; k++ {
				acc += probs[k]
				if u <= acc {
					newK = k
					break
				}
			}
			// Token log-likelihood under the predictive distribution.
			alphaSum := cfg.Alpha * float64(K)
			logLik += math.Log(sum / (docLen - 1 + alphaSum))
			// Add the token back with its new topic.
			st.z[d][t] = int32(newK)
			st.ndk[d][newK]++
			wc[newK]++
			localTotals[newK]++
			addDelta(newK, int(w), +1)
			tokens++
		}
	}
	tc.Charge(cost.ElemWork(tokens * K))
	pushDeltas(tc, mat, delta, cfg)

	res := iterResult{LogLik: logLik, Tokens: tokens, TotalsDelta: make([]float64, K)}
	for k := 0; k < K; k++ {
		res.TotalsDelta[k] = localTotals[k] - totals[k]
	}
	return res
}

// sparseSweep is gibbsSweep's SparseLDA variant: identical distribution,
// bucketized arithmetic, compute charged by the operations actually walked.
func sparseSweep(tc *rdd.TaskContext, mat *ps.Matrix, st *partState, rows []data.Document,
	rng *linalg.RNG, counts map[int][]float64, localTotals, totals []float64, vb float64,
	delta map[int]map[int]float64, addDelta func(k, w int, v float64), cfg Config) iterResult {
	cost := tc.Ctx.Cl.Cost
	K := cfg.Topics
	alphaSum := cfg.Alpha * float64(K)
	sw := newSparseSweeper(K, cfg.Alpha, cfg.Beta, vb, counts, localTotals)
	var logLik float64
	tokens := 0
	ops := 0
	for d, doc := range rows {
		dIdx := newNZIndexInt(st.ndk[d], K)
		sw.beginDoc(st.ndk[d], dIdx)
		ops += K
		docLen := float64(len(doc.Words))
		for t, w := range doc.Words {
			old := int(st.z[d][t])
			sw.remove(int(w), old)
			addDelta(old, int(w), -1)
			newK, total := sw.sample(rng, int(w))
			ops += len(sw.wordIdx[int(w)].items) + len(dIdx.items) + 4
			logLik += math.Log(total / (docLen - 1 + alphaSum))
			sw.insert(int(w), newK)
			st.z[d][t] = int32(newK)
			addDelta(newK, int(w), +1)
			tokens++
		}
	}
	tc.Charge(cost.ElemWork(ops))
	pushDeltas(tc, mat, delta, cfg)
	res := iterResult{LogLik: logLik, Tokens: tokens, TotalsDelta: make([]float64, K)}
	for k := 0; k < K; k++ {
		res.TotalsDelta[k] = localTotals[k] - totals[k]
	}
	return res
}

func distinctWords(rows []data.Document) []int {
	seen := map[int32]bool{}
	for _, doc := range rows {
		for _, w := range doc.Words {
			seen[w] = true
		}
	}
	out := make([]int, 0, len(seen))
	for w := range seen {
		out = append(out, int(w))
	}
	sort.Ints(out)
	return out
}

// TopWords returns the n highest-count words of one topic (pulled from the
// servers), for qualitative inspection.
func TopWords(p *simnet.Proc, from *simnet.Node, m *Model, topic, n int) []int {
	row := m.WordTopic.PullRow(p, from, topic)
	type wc struct {
		w int
		c float64
	}
	all := make([]wc, len(row))
	for w, c := range row {
		all[w] = wc{w, c}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].c > all[b].c })
	out := make([]int, 0, n)
	for i := 0; i < n && i < len(all); i++ {
		out = append(out, all[i].w)
	}
	return out
}
