package lda

import (
	"math"
	"sort"

	"repro/internal/data"
)

// Phi returns the smoothed topic-word distributions φ[k][w] =
// (n_kw + β) / (n_k + Vβ), read host-side from shard memory (evaluation
// only; no virtual time is charged).
func (m *Model) Phi(beta float64) [][]float64 {
	phi := make([][]float64, m.Topics)
	vb := float64(m.Vocab) * beta
	for k := 0; k < m.Topics; k++ {
		row := make([]float64, m.Vocab)
		for s := 0; s < m.WordTopic.Part.NumServers(); s++ {
			sh := m.WordTopic.ShardOf(s)
			sh.Scatter(sh.Rows[k], row)
		}
		denom := m.Totals[k] + vb
		for w := range row {
			row[w] = (row[w] + beta) / denom
		}
		phi[k] = row
	}
	return phi
}

// Perplexity computes exp(−loglik/token) of held-out documents under the
// trained model, folding in document-topic proportions with a fixed-point
// EM pass per document (the standard left-out evaluation).
func Perplexity(m *Model, docs []data.Document, alpha, beta float64) float64 {
	phi := m.Phi(beta)
	var logLik float64
	var tokens int
	theta := make([]float64, m.Topics)
	next := make([]float64, m.Topics)
	for _, doc := range docs {
		if len(doc.Words) == 0 {
			continue
		}
		// Initialize θ uniform, run a few fixed-point iterations of
		// θ_k ∝ α + Σ_w p(k|w,θ).
		for k := range theta {
			theta[k] = 1.0 / float64(m.Topics)
		}
		for it := 0; it < 20; it++ {
			for k := range next {
				next[k] = alpha
			}
			for _, w := range doc.Words {
				var denom float64
				for k := 0; k < m.Topics; k++ {
					denom += theta[k] * phi[k][w]
				}
				if denom <= 0 {
					continue
				}
				for k := 0; k < m.Topics; k++ {
					next[k] += theta[k] * phi[k][w] / denom
				}
			}
			var sum float64
			for k := range next {
				sum += next[k]
			}
			for k := range theta {
				theta[k] = next[k] / sum
			}
		}
		for _, w := range doc.Words {
			var pw float64
			for k := 0; k < m.Topics; k++ {
				pw += theta[k] * phi[k][w]
			}
			if pw > 0 {
				logLik += math.Log(pw)
				tokens++
			}
		}
	}
	if tokens == 0 {
		return math.NaN()
	}
	return math.Exp(-logLik / float64(tokens))
}

// CoherenceUMass computes the UMass topic-coherence score of one topic's top
// n words over a reference corpus: Σ log (D(wi,wj)+1) / D(wj) for pairs of
// top words, higher (closer to 0) is better. It is the standard automatic
// check that a topic's top words actually co-occur.
func CoherenceUMass(docs []data.Document, topWords []int, n int) float64 {
	if n > len(topWords) {
		n = len(topWords)
	}
	if n < 2 {
		return 0
	}
	// Document frequency per word and co-document frequency per pair.
	df := map[int]int{}
	codf := map[[2]int]int{}
	want := map[int]bool{}
	for _, w := range topWords[:n] {
		want[w] = true
	}
	seen := map[int]bool{}
	for _, doc := range docs {
		for k := range seen {
			delete(seen, k)
		}
		for _, w := range doc.Words {
			if want[int(w)] {
				seen[int(w)] = true
			}
		}
		for w := range seen {
			df[w]++
		}
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if seen[topWords[i]] && seen[topWords[j]] {
					codf[[2]int{topWords[i], topWords[j]}]++
				}
			}
		}
	}
	var score float64
	pairs := 0
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			d := df[topWords[j]]
			if d == 0 {
				continue
			}
			score += math.Log(float64(codf[[2]int{topWords[i], topWords[j]}]+1) / float64(d))
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return score / float64(pairs)
}

// TopWordsHost returns the n highest-count words of a topic, read host-side.
func (m *Model) TopWordsHost(topic, n int) []int {
	row := make([]float64, m.Vocab)
	for s := 0; s < m.WordTopic.Part.NumServers(); s++ {
		sh := m.WordTopic.ShardOf(s)
		sh.Scatter(sh.Rows[topic], row)
	}
	type wc struct {
		w int
		c float64
	}
	all := make([]wc, len(row))
	for w, c := range row {
		all[w] = wc{w, c}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].c > all[b].c })
	out := make([]int, 0, n)
	for i := 0; i < n && i < len(all); i++ {
		out = append(out, all[i].w)
	}
	return out
}

// Theta returns the smoothed document-topic proportions for partition part,
// θ[d][k] = (n_dk + α) / (len_d + Kα), read from the worker-local sampler
// state (host-side evaluation helper).
func (m *Model) Theta(part int) [][]float64 {
	if part < 0 || part >= len(m.states) || m.states[part] == nil {
		return nil
	}
	st := m.states[part]
	out := make([][]float64, len(st.ndk))
	for d, counts := range st.ndk {
		row := make([]float64, m.Topics)
		var docLen float64
		for _, c := range counts {
			docLen += float64(c)
		}
		denom := docLen + m.alpha*float64(m.Topics)
		for k, c := range counts {
			row[k] = (float64(c) + m.alpha) / denom
		}
		out[d] = row
	}
	return out
}
