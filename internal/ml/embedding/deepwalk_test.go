package embedding

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ps"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

func testGraphPairs(t *testing.T) (*data.Graph, []data.Pair) {
	t.Helper()
	g, err := data.GenerateGraph(data.GraphConfig{Vertices: 300, EdgesPerNode: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := data.DefaultWalkConfig()
	wcfg.WalksPerVertex = 2
	pairs := data.RandomWalks(g, wcfg)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	return g, pairs
}

func newEngine(executors, servers int) *core.Engine {
	opt := core.DefaultOptions()
	opt.Executors = executors
	opt.Servers = servers
	return core.NewEngine(opt)
}

func trainMode(t *testing.T, mode Mode, servers int) (*Model, *core.Engine, []data.Pair, float64) {
	t.Helper()
	_, pairs := testGraphPairs(t)
	e := newEngine(4, servers)
	cfg := DefaultConfig()
	cfg.K = 32
	cfg.Mode = mode
	cfg.Iterations = 10
	cfg.BatchSize = 400
	cfg.LearningRate = 0.3
	var model *Model
	var score float64
	e.Run(func(p *simnet.Proc) {
		prdd := rdd.FromSlices(e.RDD, data.PartitionPairs(pairs, 4)).Cache()
		m, err := Train(p, e, prdd, 300, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
		score = EdgeScore(p, e.Driver(), m, pairs[:200], 3)
	})
	return model, e, pairs, score
}

func TestTrainDCVLearnsStructure(t *testing.T) {
	model, _, _, score := trainMode(t, ModeDCV, 2)
	if model.Trace.Len() != 10 {
		t.Fatalf("trace samples = %d", model.Trace.Len())
	}
	first, last := model.Trace.Values[0], model.Trace.Final()
	if last >= first {
		t.Fatalf("pair loss did not fall: %v -> %v", first, last)
	}
	if score <= 0.02 {
		t.Fatalf("edge score %v: embedding learned no graph structure", score)
	}
}

func TestTrainPullPushLearnsStructure(t *testing.T) {
	model, _, _, score := trainMode(t, ModePullPush, 2)
	first, last := model.Trace.Values[0], model.Trace.Final()
	if last >= first {
		t.Fatalf("pair loss did not fall: %v -> %v", first, last)
	}
	if score <= 0.02 {
		t.Fatalf("edge score %v: embedding learned no graph structure", score)
	}
}

func TestDCVModeFasterWithFewServers(t *testing.T) {
	// Fig 9(c): with few servers, PS2-DeepWalk beats PS-DeepWalk because
	// only scalars travel instead of full embedding vectors.
	timeFor := func(mode Mode) float64 {
		_, pairs := testGraphPairs(t)
		e := newEngine(4, 2)
		cfg := DefaultConfig()
		cfg.K = 256
		cfg.Mode = mode
		cfg.Iterations = 3
		cfg.BatchSize = 100
		return e.Run(func(p *simnet.Proc) {
			prdd := rdd.FromSlices(e.RDD, data.PartitionPairs(pairs, 4)).Cache()
			if _, err := Train(p, e, prdd, 300, cfg); err != nil {
				t.Error(err)
			}
		})
	}
	dcvTime := timeFor(ModeDCV)
	ppTime := timeFor(ModePullPush)
	if dcvTime*1.5 > ppTime {
		t.Fatalf("DCV mode (%vs) not clearly faster than pull/push (%vs) with 2 servers", dcvTime, ppTime)
	}
}

func TestModesComputeSameUpdateGivenSameDraws(t *testing.T) {
	// Both modes implement the same math: starting from identical
	// initialization and applying the same single pair update must produce
	// identical embeddings (up to float noise).
	runOne := func(mode Mode) []float64 {
		e := newEngine(1, 3)
		cfg := DefaultConfig()
		cfg.K = 16
		cfg.Mode = mode
		cfg.Iterations = 1
		cfg.BatchSize = 1
		cfg.Negatives = 2
		var vec []float64
		e.Run(func(p *simnet.Proc) {
			pairs := []data.Pair{{U: 1, V: 2}}
			prdd := rdd.FromSlices(e.RDD, [][]data.Pair{pairs})
			m, err := Train(p, e, prdd, 10, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			vec = m.InputVector(p, e.Driver(), 1)
		})
		return vec
	}
	a := runOne(ModeDCV)
	b := runOne(ModePullPush)
	if len(a) != len(b) {
		t.Fatal("dimension mismatch")
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("modes diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTrainValidation(t *testing.T) {
	e := newEngine(2, 2)
	e.Run(func(p *simnet.Proc) {
		prdd := rdd.FromSlices(e.RDD, [][]data.Pair{{{U: 0, V: 1}}})
		if _, err := Train(p, e, prdd, 0, DefaultConfig()); err == nil {
			t.Error("V=0 accepted")
		}
		empty := rdd.FromSlices(e.RDD, [][]data.Pair{{}})
		if _, err := Train(p, e, empty, 5, DefaultConfig()); err == nil {
			t.Error("empty dataset accepted")
		}
	})
}

func TestSimilarity(t *testing.T) {
	if s := Similarity([]float64{1, 0}, []float64{1, 0}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("self similarity = %v", s)
	}
	if s := Similarity([]float64{1, 0}, []float64{0, 1}); math.Abs(s) > 1e-12 {
		t.Fatalf("orthogonal similarity = %v", s)
	}
	if s := Similarity([]float64{0, 0}, []float64{1, 1}); s != 0 {
		t.Fatalf("zero-vector similarity = %v", s)
	}
}

func TestUnigramNegativeSamplingSkewsTowardHubs(t *testing.T) {
	// On a preferential-attachment graph, hub vertices dominate walk
	// contexts; unigram^0.75 negatives must therefore hit hubs far more
	// often than uniform ones would. We observe the effect through the
	// context rows touched during training (hub context rows move more).
	g, pairs := testGraphPairs(t)
	// Find the hub (max degree vertex).
	hub, hubDeg := 0, 0
	for v, nbrs := range g.Adj {
		if len(nbrs) > hubDeg {
			hub, hubDeg = v, len(nbrs)
		}
	}
	_ = hub
	freq := make([]float64, g.Vertices())
	for _, pr := range pairs {
		freq[pr.V]++
	}
	// Sanity: the distribution is skewed enough for the test to mean something.
	var maxF, sumF float64
	for _, f := range freq {
		sumF += f
		if f > maxF {
			maxF = f
		}
	}
	if maxF < 4*sumF/float64(len(freq)) {
		t.Skip("graph not skewed enough")
	}
	e := newEngine(4, 2)
	cfg := DefaultConfig()
	cfg.K = 16
	cfg.Iterations = 4
	cfg.BatchSize = 200
	e.Run(func(p *simnet.Proc) {
		prdd := rdd.FromSlices(e.RDD, data.PartitionPairs(pairs, 4)).Cache()
		if _, err := Train(p, e, prdd, g.Vertices(), cfg); err != nil {
			t.Error(err)
		}
	})
	// The training must simply succeed with the noise sampler wired in; the
	// sampler's distribution itself is verified in linalg.
}

// TestCachedPullPushAutoFlush runs the PS baseline through the worker cache
// with the write-combining auto-tuner enabled: training must succeed, the
// tuner must actually trigger mid-partition flushes, and the learned loss
// trace must stay finite (auto-flushing only re-times delta shipment; every
// delta still lands exactly once).
func TestCachedPullPushAutoFlush(t *testing.T) {
	_, pairs := testGraphPairs(t)
	e := newEngine(4, 2)
	cfg := DefaultConfig()
	cfg.K = 16
	cfg.Mode = ModePullPush
	cfg.Iterations = 3
	cfg.BatchSize = 200
	cfg.Cache = &ps.CacheConfig{Staleness: 1, CombinePushes: true, AutoFlushTarget: 0.5}
	e.Run(func(p *simnet.Proc) {
		prdd := rdd.FromSlices(e.RDD, data.PartitionPairs(pairs, 4)).Cache()
		m, err := Train(p, e, prdd, 300, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		for _, v := range m.Trace.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite loss %v in trace", v)
			}
		}
	})
	st := e.PS.Cache
	if st.AutoFlushes == 0 {
		t.Fatal("auto-tuner never triggered a flush (dense per-pair deltas should trip it fast)")
	}
	if st.AutoFlushes >= st.Flushes {
		t.Fatalf("every flush counted as auto (%d of %d); partition-end flushes lost", st.AutoFlushes, st.Flushes)
	}
}

func TestUniformNegativesStillSupported(t *testing.T) {
	_, pairs := testGraphPairs(t)
	e := newEngine(2, 2)
	cfg := DefaultConfig()
	cfg.K = 8
	cfg.Iterations = 2
	cfg.BatchSize = 50
	cfg.UniformNegatives = true
	e.Run(func(p *simnet.Proc) {
		prdd := rdd.FromSlices(e.RDD, data.PartitionPairs(pairs, 2)).Cache()
		if _, err := Train(p, e, prdd, 300, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestMostSimilarFavorsNeighbors(t *testing.T) {
	g, pairs := testGraphPairs(t)
	e := newEngine(4, 2)
	cfg := DefaultConfig()
	cfg.K = 32
	cfg.Iterations = 10
	cfg.BatchSize = 400
	cfg.LearningRate = 0.3
	var model *Model
	e.Run(func(p *simnet.Proc) {
		prdd := rdd.FromSlices(e.RDD, data.PartitionPairs(pairs, 4)).Cache()
		m, err := Train(p, e, prdd, g.Vertices(), cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	// For a sample of vertices, the top-5 most similar should contain real
	// graph neighbours more often than 5 random vertices would.
	hits, expect := 0, 0.0
	samples := 30
	for u := 0; u < samples; u++ {
		nbrs := map[int]bool{}
		for _, v := range g.Adj[u] {
			nbrs[int(v)] = true
		}
		if len(nbrs) == 0 {
			continue
		}
		expect += 5 * float64(len(nbrs)) / float64(g.Vertices()-1)
		for _, cand := range model.MostSimilar(u, 5) {
			if nbrs[cand.Vertex] {
				hits++
			}
		}
	}
	if float64(hits) < 3*expect {
		t.Fatalf("top-5 similarity found %d neighbour hits; random baseline expectation %.1f", hits, expect)
	}
}

func TestSaveLoadTextRoundTrip(t *testing.T) {
	_, pairs := testGraphPairs(t)
	e := newEngine(2, 2)
	cfg := DefaultConfig()
	cfg.K = 8
	cfg.Iterations = 2
	cfg.BatchSize = 50
	var model *Model
	e.Run(func(p *simnet.Proc) {
		prdd := rdd.FromSlices(e.RDD, data.PartitionPairs(pairs, 2))
		m, err := Train(p, e, prdd, 300, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	var buf bytes.Buffer
	if err := model.SaveText(&buf); err != nil {
		t.Fatal(err)
	}
	table, err := LoadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 300 || len(table[0]) != 8 {
		t.Fatalf("table shape %dx%d", len(table), len(table[0]))
	}
	orig := model.hostInputTable()
	for v := range table {
		for i := range table[v] {
			if math.Abs(table[v][i]-orig[v][i]) > 1e-12 {
				t.Fatalf("vertex %d dim %d: %v != %v", v, i, table[v][i], orig[v][i])
			}
		}
	}
	if _, err := LoadText(bytes.NewReader([]byte("bogus"))); err == nil {
		t.Fatal("garbage header accepted")
	}
}

func TestLinkPredictionAUC(t *testing.T) {
	g, pairs := testGraphPairs(t)
	e := newEngine(4, 2)
	cfg := DefaultConfig()
	cfg.K = 32
	cfg.Iterations = 10
	cfg.BatchSize = 400
	cfg.LearningRate = 0.3
	var model *Model
	e.Run(func(p *simnet.Proc) {
		prdd := rdd.FromSlices(e.RDD, data.PartitionPairs(pairs, 4)).Cache()
		m, err := Train(p, e, prdd, g.Vertices(), cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	// Score real edges against non-edges.
	var edges []data.Pair
	for u, nbrs := range g.Adj {
		for _, v := range nbrs {
			if int32(u) < v {
				edges = append(edges, data.Pair{U: int32(u), V: v})
			}
			if len(edges) >= 300 {
				break
			}
		}
		if len(edges) >= 300 {
			break
		}
	}
	auc := model.LinkPredictionAUC(g, edges, 7)
	if math.IsNaN(auc) || auc < 0.65 {
		t.Fatalf("link prediction AUC %v; trained embedding should beat chance clearly", auc)
	}
}
