// Package embedding implements DeepWalk-style graph embedding (paper
// Section 5.2.2, Figures 5 and 6): every vertex gets an input (embedding)
// vector and an output (context) vector, stored as the 2V rows of one
// column-partitioned raw matrix — i.e. 2V dimension co-located DCVs created
// via dense(K, V*2) + derive. Training slides skip-gram with negative
// sampling over random-walk pairs.
//
// Two execution modes reproduce the paper's Figure 9(c)/(d) comparison:
//
//   - ModeDCV ("PS2-DeepWalk"): the dot products and the axpy updates run
//     server-side; only vertex ids, partial dots and a handful of scalars
//     cross the network.
//   - ModePullPush ("PS-DeepWalk"): a classic parameter server — the worker
//     pulls the full vectors of the center and all context vertices, updates
//     them locally, and pushes the deltas back.
package embedding

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/ps"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

// Mode selects the communication strategy.
type Mode int

const (
	// ModeDCV is PS2's server-side computation path.
	ModeDCV Mode = iota
	// ModePullPush is the pull/update/push baseline path.
	ModePullPush
)

func (m Mode) String() string {
	if m == ModeDCV {
		return "PS2"
	}
	return "PS"
}

// Config holds the DeepWalk hyperparameters; defaults follow Table 4.
type Config struct {
	K            int // embedding dimension
	LearningRate float64
	BatchSize    int // pairs per worker per iteration
	Negatives    int
	Iterations   int
	Mode         Mode
	// UniformNegatives draws negative samples uniformly instead of from the
	// word2vec unigram^0.75 noise distribution (the default).
	UniformNegatives bool
	// CheckpointEvery, when positive, checkpoints the embedding matrix to
	// the reliable store every that-many iterations, bounding what a server
	// crash can lose (paper Section 5.3).
	CheckpointEvery int
	// NoFusion disables the fused request pipeline in ModeDCV: every pair
	// issues its dot and update fan-outs separately instead of shipping the
	// previous pair's update inside the next pair's dot request. Fusion is
	// the default; the ext-fusion experiment flips this switch.
	NoFusion bool
	// Cache, when non-nil, routes ModePullPush through the worker-side
	// parameter cache: row pulls come from the executor's cache (validated
	// with cheap version stamps) and the per-pair delta pushes accumulate in
	// a write-combining buffer flushed once per partition. Pending deltas are
	// merged into pulled rows (read-your-writes), so a worker's own updates
	// stay visible between flushes. Value-bounded / adaptive cache policies
	// (Cache.Policy) need no extra wiring here: the combined pushes target the
	// very rows the cache holds, so the buffer's flush credits pending-delta
	// accounting automatically. Ignored in ModeDCV, whose updates already
	// ride fused server-side programs.
	Cache *ps.CacheConfig
	Seed  uint64
}

// DefaultConfig returns the paper's Table 4 values with an embedding
// dimension of 128 ("could be one hundred or bigger").
func DefaultConfig() Config {
	return Config{K: 128, LearningRate: 0.01, BatchSize: 512, Negatives: 5, Iterations: 10, Mode: ModeDCV, Seed: 7}
}

// Model is the trained embedding table.
type Model struct {
	Mat   *ps.Matrix // 2V rows × K columns: rows [0,V) input, [V,2V) output
	V     int
	K     int
	Trace *core.Trace // mean pair loss per iteration
}

// InputVector pulls vertex u's embedding to the caller.
func (m *Model) InputVector(p *simnet.Proc, from *simnet.Node, u int) []float64 {
	return m.Mat.PullRows(p, from, []int{u})[0]
}

// Train embeds the graph behind the given skip-gram pair dataset.
func Train(p *simnet.Proc, e *core.Engine, pairs *rdd.RDD[data.Pair], vertices int, cfg Config) (*Model, error) {
	if vertices <= 0 || cfg.K <= 0 || cfg.Iterations <= 0 {
		return nil, fmt.Errorf("embedding: invalid config V=%d %+v", vertices, cfg)
	}
	// One raw matrix with 2V co-located rows — DCV.dense(K, V*2) + derive in
	// the paper's Figure 6.
	mat, err := e.PS.CreateMatrix(p, 2*vertices, cfg.K)
	if err != nil {
		return nil, err
	}
	initEmbeddings(p, e, mat, vertices, cfg)

	// Optional worker-side cache for the pull/push path (the mode that ships
	// whole vectors and so has something to save).
	var cache *ps.CachedClient
	if cfg.Cache != nil && cfg.Mode == ModePullPush {
		cache = ps.NewCachedClient(mat, *cfg.Cache)
	}

	model := &Model{Mat: mat, V: vertices, K: cfg.K, Trace: &core.Trace{Name: cfg.Mode.String() + "-DeepWalk"}}
	totalPairs := rdd.Count(p, pairs)
	if totalPairs == 0 {
		return nil, fmt.Errorf("embedding: empty pair dataset")
	}
	parts := pairs.Partitions()
	fraction := float64(cfg.BatchSize*parts) / float64(totalPairs)

	// Negative-sample distribution: word2vec's unigram^0.75 over context
	// frequencies, aggregated once across the partitions and broadcast.
	var negSampler *linalg.AliasSampler
	if !cfg.UniformNegatives {
		var err error
		negSampler, err = buildNoiseSampler(p, e, pairs, vertices)
		if err != nil {
			return nil, err
		}
	}

	for it := 0; it < cfg.Iterations; it++ {
		batch := pairs.Sample(fraction, cfg.Seed+uint64(it))
		losses := rdd.RunPartitions(p, batch, 16, func(tc *rdd.TaskContext, part int, rows []data.Pair) [2]float64 {
			tc.Commit()
			var lossSum float64
			var count int
			rng := tc.RNG()
			worker := &dcvWorker{mat: mat, cfg: cfg}
			var buf *ps.PushBuffer
			if cache != nil {
				buf = cache.NewPushBuffer()
			}
			// Pair-parity context/label scratch. Two generations alternate
			// because with fusion on, pair k's held-back update op executes
			// inside pair k+1's request and still reads pair k's contexts —
			// a single reused buffer would be overwritten out from under it.
			var ctxScratch [2][]int
			var lblScratch [2][]float64
			for g := range ctxScratch {
				ctxScratch[g] = make([]int, 1+cfg.Negatives)
				lblScratch[g] = make([]float64, 1+cfg.Negatives)
			}
			var pps pullPushScratch
			for pi, pr := range rows {
				contexts, labels := ctxScratch[pi&1], lblScratch[pi&1]
				contexts[0] = vertices + int(pr.V) // positive context
				labels[0] = 1
				for n := 0; n < cfg.Negatives; n++ {
					if negSampler != nil {
						contexts[1+n] = vertices + negSampler.Sample(rng)
					} else {
						contexts[1+n] = vertices + rng.Intn(vertices)
					}
					labels[1+n] = 0
				}
				var loss float64
				if cfg.Mode == ModeDCV {
					loss = worker.step(tc, int(pr.U), contexts, labels)
				} else {
					loss = pullPushStep(tc, mat, cache, buf, int(pr.U), contexts, labels, cfg, &pps)
					// Auto-tuned mid-partition flush (opt-in via the cache
					// config): ship the combined deltas once payload dwarfs
					// framing instead of holding everything to partition end.
					// Flushed deltas leave the buffer, so read-your-writes
					// degrades to the cache's staleness bound for them — the
					// same visibility other workers' committed updates get.
					if buf != nil && buf.ShouldFlush() {
						buf.Flush(tc.P, tc.Node)
					}
				}
				lossSum += loss
				count++
			}
			worker.flush(tc)
			if buf != nil {
				buf.Flush(tc.P, tc.Node)
			}
			return [2]float64{lossSum, float64(count)}
		})
		var lossSum, count float64
		for _, l := range losses {
			lossSum += l[0]
			count += l[1]
		}
		if count > 0 {
			model.Trace.Add(p.Now(), lossSum/count)
		}
		// The iteration mutated the embeddings: advance the matrix's model
		// clock (serving-tier replica freshness rides it, ps/serve.go) and the
		// executor cache clocks.
		mat.TickClock()
		if cache != nil {
			cache.Tick()
		}
		if cfg.CheckpointEvery > 0 && (it+1)%cfg.CheckpointEvery == 0 {
			e.PS.Checkpoint(p, mat)
		}
	}
	return model, nil
}

// buildNoiseSampler counts context-vertex frequencies across the pair
// dataset (one small dense count vector per partition to the driver) and
// builds the unigram^0.75 alias table.
func buildNoiseSampler(p *simnet.Proc, e *core.Engine, pairs *rdd.RDD[data.Pair], vertices int) (*linalg.AliasSampler, error) {
	cost := e.Cluster.Cost
	counts := rdd.Aggregate(p, pairs, rdd.AggSpec[data.Pair, []float64]{
		Zero: func() []float64 { return make([]float64, vertices) },
		Seq: func(tc *rdd.TaskContext, acc []float64, pr data.Pair) []float64 {
			acc[pr.V]++
			return acc
		},
		Comb: func(a, b []float64) []float64 {
			for i := range a {
				a[i] += b[i]
			}
			return a
		},
		Bytes:    func([]float64) float64 { return cost.DenseBytes(vertices) },
		CombWork: cost.ElemWork(vertices),
	})
	for i := range counts {
		counts[i] = math.Pow(counts[i]+1, 0.75) // +1 smoothing: every vertex samplable
	}
	// Broadcast the noise table to the workers.
	e.RDD.Broadcast(p, cost.DenseBytes(vertices))
	return linalg.NewAliasSampler(counts)
}

// initEmbeddings gives input and output vectors small random values
// (symmetric initialization converges faster at our scaled-down update
// counts than word2vec's zero-output convention). The initialization runs
// server-side — the coordinator sends one seeded command per server and each
// server fills its own shard — so setup costs one RPC per server instead of
// 2V row writes, as production parameter servers do.
func initEmbeddings(p *simnet.Proc, e *core.Engine, mat *ps.Matrix, vertices int, cfg Config) {
	scale := 1.0 / math.Sqrt(float64(cfg.K))
	cost := e.Cluster.Cost
	g := p.Sim().NewGroup()
	for s := 0; s < mat.Part.NumServers(); s++ {
		s := s
		g.Go("init-embeddings", func(cp *simnet.Proc) {
			sh := mat.ShardOf(s)
			srv := mat.ServerNode(s)
			e.Driver().Send(cp, srv, cost.RequestOverheadB)
			srv.Compute(cp, cost.ElemWork(len(sh.Rows)*sh.Width()))
			rng := linalg.NewRNG(cfg.Seed*77 + 13 + uint64(s)*1_000_003)
			for r := range sh.Rows {
				row := sh.Rows[r]
				for i := range row {
					row[i] = (rng.Float64() - 0.5) * scale
				}
			}
			// The fill bypassed CallShard, so mark every row mutated: delta
			// checkpoints and cache version stamps must see the init values.
			sh.TouchAll()
			srv.Send(cp, e.Driver(), cost.RequestOverheadB)
		})
	}
	g.Wait(p)
}

// dcvWorker runs the server-side DeepWalk path for one partition. With fusion
// on (the default) it pipelines requests: pair k's update op is held back and
// shipped inside pair k+1's dot request as one fused program per server, so
// steady-state costs ONE fan-out per pair instead of two. The server executes
// the program in order — update first, then dots — so the dots observe exactly
// the post-update state they would have seen unfused. flush ships the last
// held-back update at partition end.
type dcvWorker struct {
	mat     *ps.Matrix
	cfg     Config
	pending *ps.InvokeOp // previous pair's update, awaiting the next request

	// Steady-state scratch, allocated once per partition instead of per pair.
	//
	// State captured by the held-back update op (gs, the op struct itself) is
	// pair-parity double-buffered: pair k's op executes inside pair k+1's
	// request, so pair k+1 must fill the OTHER generation. State consumed
	// within one step (parts, dots) and per-shard update scratch reset on Fn
	// entry (du, dcIdx/dcVal) need only one generation.
	parity int
	gs     [2][]float64   // gradient scalars, captured by the update op
	ops    [2]ps.InvokeOp // update-op storage behind dw.pending
	parts  [][]float64    // per-server dot partials; slot s written by server s only
	dots   []float64
	fused  []ps.InvokeOp // 2-op program buffer for the fused request
	du     []float64     // update scratch: center-row delta, reset at Fn start
	dcIdx  []int         // update scratch: distinct context rows, first-seen order
	dcVal  [][]float64   // update scratch: context deltas aligned with dcIdx
}

// ctxDelta returns the zeroed accumulation buffer for context row ctx,
// deduplicating repeated negatives within one sample group (nctx is tiny, so
// the linear scan beats a map and allocates nothing in steady state).
func (dw *dcvWorker) ctxDelta(ctx, n int) []float64 {
	for k, id := range dw.dcIdx {
		if id == ctx {
			return dw.dcVal[k]
		}
	}
	k := len(dw.dcIdx)
	dw.dcIdx = append(dw.dcIdx, ctx)
	if k == len(dw.dcVal) {
		dw.dcVal = append(dw.dcVal, make([]float64, n))
	}
	d := dw.dcVal[k]
	if cap(d) < n {
		d = make([]float64, n)
		dw.dcVal[k] = d
	}
	d = d[:n]
	dw.dcVal[k] = d
	linalg.Fill(d, 0)
	return d
}

// step performs one skip-gram-with-negatives update entirely server-side:
// a batched dot (one request per server, partial dots back) followed by a
// batched axpy-style update (gradient scalars out, no vector data on the
// wire). Matches the paper's Figure 5/6 flow with negative-sample batching.
func (dw *dcvWorker) step(tc *rdd.TaskContext, center int, contexts []int, labels []float64) float64 {
	cost := tc.Ctx.Cl.Cost
	mat, cfg := dw.mat, dw.cfg
	nctx := len(contexts)
	if dw.parts == nil {
		dw.parts = make([][]float64, mat.Part.NumServers())
		for s := range dw.parts {
			dw.parts[s] = make([]float64, nctx)
		}
		dw.dots = make([]float64, nctx)
		dw.gs[0] = make([]float64, nctx)
		dw.gs[1] = make([]float64, nctx)
		dw.fused = make([]ps.InvokeOp, 2)
	}
	par := dw.parity
	dw.parity ^= 1
	// Server-side dots: request carries the row ids, response the partials.
	// Each server assigns into its own slot (never accumulates into shared
	// host memory) so a retried invocation after a crash stays idempotent —
	// every successful (re)execution overwrites all nctx entries of its slot.
	partsByServer := dw.parts
	dotReq, dotResp := 4*float64(1+nctx), 8*float64(nctx)
	dotWork := func(w int) float64 { return cost.ElemWork(w * nctx) }
	dotFn := func(s int, sh *ps.Shard) float64 {
		part := partsByServer[s]
		u := sh.Rows[center]
		for j, ctx := range contexts {
			part[j] = linalg.Dot(u, sh.Rows[ctx])
		}
		return 0
	}
	if dw.pending != nil {
		dw.fused[0] = *dw.pending
		dw.fused[1] = ps.InvokeOp{ReqBytes: dotReq, RespBytes: dotResp, Work: dotWork, Fn: dotFn}
		dw.pending = nil
		mat.InvokeFused(tc.P, tc.Node, dw.fused)
	} else {
		// No held-back update: a pure read, outside dedup tracking.
		mat.InvokeRead(tc.P, tc.Node, dotReq, dotResp, dotWork, dotFn)
	}
	dots := dw.dots
	linalg.Fill(dots, 0)
	for _, part := range partsByServer {
		for j, x := range part {
			dots[j] += x
		}
	}
	// Gradients are scalars computed at the worker, in this pair's parity
	// generation: the previous pair's gs is still live inside dw.pending.
	gs := dw.gs[par]
	var loss float64
	for j := range contexts {
		p := linalg.Sigmoid(dots[j])
		gs[j] = cfg.LearningRate * (labels[j] - p)
		loss += linalg.LogLoss(dots[j], labels[j])
	}
	tc.Charge(cost.ElemWork(nctx))
	// Server-side update: ship only the gradient scalars; every server
	// updates its stretch of the center and context rows locally. The op
	// lives in this pair's parity slot of dw.ops so the held-back pointer
	// stays valid while the next pair records its own.
	update := &dw.ops[par]
	*update = ps.InvokeOp{
		ReqBytes: 4*float64(1+nctx) + 8*float64(nctx),
		Work:     func(w int) float64 { return cost.ElemWork(w * nctx * 2) },
		Mutates:  true,
		Fn: func(s int, sh *ps.Shard) float64 {
			// Read-then-apply: all gradients are computed against the
			// pre-update vectors, so a context sampled twice in one group
			// (possible with negative sampling) receives two additive
			// deltas — identical semantics to the pull/push path, which
			// works on pulled copies. The worker-owned du/dc scratch is
			// reset on entry; Fn bodies run start to finish with no
			// scheduler yield, so one buffer set serves every server's
			// invocation of this op.
			u := sh.Rows[center]
			if cap(dw.du) < len(u) {
				dw.du = make([]float64, len(u))
			}
			du := dw.du[:len(u)]
			linalg.Fill(du, 0)
			dw.dcIdx = dw.dcIdx[:0]
			for j, ctx := range contexts {
				c := sh.Rows[ctx]
				d := dw.ctxDelta(ctx, len(u))
				for i := range u {
					du[i] += gs[j] * c[i]
					d[i] += gs[j] * u[i]
				}
			}
			// Apply in first-seen (deterministic) order; distinct rows, so
			// the order cannot perturb any element's summation.
			for k, ctx := range dw.dcIdx {
				linalg.Add(sh.Rows[ctx], dw.dcVal[k])
			}
			linalg.Add(u, du)
			return 0
		},
	}
	if cfg.NoFusion {
		mat.Invoke(tc.P, tc.Node, update.ReqBytes, 0, update.Work, update.Fn)
	} else {
		dw.pending = update
	}
	return loss
}

// flush ships the last held-back update at partition end.
func (dw *dcvWorker) flush(tc *rdd.TaskContext) {
	if dw.pending == nil {
		return
	}
	up := *dw.pending
	dw.pending = nil
	dw.mat.Invoke(tc.P, tc.Node, up.ReqBytes, 0, up.Work, up.Fn)
}

// pullPushScratch is the per-partition steady-state scratch of the pull/push
// arm: row-id assembly, pull destination buffers, and delta accumulators are
// allocated once and reused across pairs. Safe because every consumer
// (TryPullRowsInto, AddRowsDelta's host-side accumulate, PushRowsDelta's
// synchronous call) finishes with the buffers before the next pair starts.
type pullPushScratch struct {
	rows   []int
	vecs   [][]float64
	deltas [][]float64
}

// pullPushStep is the PS-DeepWalk baseline: pull all vectors, update locally,
// push the deltas back — full vector data over the network in both
// directions. With a cache, the pull is served from the executor's cache
// (pending buffered deltas merged in for read-your-writes) and the push
// accumulates in the write-combining buffer instead of going to the wire.
func pullPushStep(tc *rdd.TaskContext, mat *ps.Matrix, cache *ps.CachedClient, buf *ps.PushBuffer, center int, contexts []int, labels []float64, cfg Config, sc *pullPushScratch) float64 {
	cost := tc.Ctx.Cl.Cost
	n := 1 + len(contexts)
	if len(sc.rows) != n {
		sc.rows = make([]int, n)
		sc.vecs = make([][]float64, n)
		sc.deltas = make([][]float64, n)
		for i := 0; i < n; i++ {
			sc.vecs[i] = make([]float64, cfg.K)
			sc.deltas[i] = make([]float64, cfg.K)
		}
	}
	rows := sc.rows
	rows[0] = center
	copy(rows[1:], contexts)
	var vecs [][]float64
	if cache != nil {
		vecs = cache.PullRows(tc.P, tc.Node, rows)
		buf.ApplyPending(rows, vecs)
	} else {
		if err := mat.TryPullRowsInto(tc.P, tc.Node, rows, sc.vecs); err != nil {
			panic(err)
		}
		vecs = sc.vecs
	}
	u := vecs[0]
	deltas := sc.deltas
	for i := range deltas {
		linalg.Fill(deltas[i], 0)
	}
	var loss float64
	for j := range contexts {
		c := vecs[1+j]
		dot := linalg.Dot(u, c)
		p := linalg.Sigmoid(dot)
		g := cfg.LearningRate * (labels[j] - p)
		loss += linalg.LogLoss(dot, labels[j])
		for i := range u {
			deltas[0][i] += g * c[i]
			deltas[1+j][i] += g * u[i]
		}
	}
	tc.Charge(cost.ElemWork(cfg.K * len(contexts) * 2))
	if buf != nil {
		buf.AddRowsDelta(rows, deltas)
	} else {
		mat.PushRowsDelta(tc.P, tc.Node, rows, deltas)
	}
	return loss
}

// Similarity computes the cosine similarity between the input embeddings of
// two vertices (for evaluation).
func Similarity(a, b []float64) float64 {
	na, nb := linalg.Norm2(a), linalg.Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return linalg.Dot(a, b) / (na * nb)
}

// EdgeScore evaluates an embedding: the mean sigmoid(u·v') over the given
// positive pairs minus the mean over random pairs; positive values mean the
// embedding learned graph structure.
func EdgeScore(p *simnet.Proc, from *simnet.Node, m *Model, pairs []data.Pair, seed uint64) float64 {
	if len(pairs) == 0 {
		return math.NaN()
	}
	rng := linalg.NewRNG(seed)
	var pos, neg float64
	for _, pr := range pairs {
		vecs := m.Mat.PullRows(p, from, []int{int(pr.U), m.V + int(pr.V), m.V + rng.Intn(m.V)})
		pos += linalg.Sigmoid(linalg.Dot(vecs[0], vecs[1]))
		neg += linalg.Sigmoid(linalg.Dot(vecs[0], vecs[2]))
	}
	return (pos - neg) / float64(len(pairs))
}

// Neighbor is a similarity query result.
type Neighbor struct {
	Vertex     int
	Similarity float64
}

// MostSimilar returns the n vertices whose input embeddings have the highest
// cosine similarity to vertex u (host-side evaluation helper reading shard
// memory; u itself is excluded).
func (m *Model) MostSimilar(u, n int) []Neighbor {
	table := m.hostInputTable()
	base := table[u]
	out := make([]Neighbor, 0, m.V-1)
	for v := 0; v < m.V; v++ {
		if v == u {
			continue
		}
		out = append(out, Neighbor{Vertex: v, Similarity: Similarity(base, table[v])})
	}
	sortNeighbors(out)
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// hostInputTable assembles all V input embeddings from shard memory.
func (m *Model) hostInputTable() [][]float64 {
	table := make([][]float64, m.V)
	for v := range table {
		table[v] = make([]float64, m.K)
	}
	for s := 0; s < m.Mat.Part.NumServers(); s++ {
		sh := m.Mat.ShardOf(s)
		for v := 0; v < m.V; v++ {
			sh.Scatter(sh.Rows[v], table[v])
		}
	}
	return table
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(a, b int) bool {
		if ns[a].Similarity != ns[b].Similarity {
			return ns[a].Similarity > ns[b].Similarity
		}
		return ns[a].Vertex < ns[b].Vertex
	})
}

// SaveText writes the input embeddings in word2vec's text format:
// a "V K" header followed by one "<vertex> <v1> ... <vK>" line per vertex.
func (m *Model) SaveText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", m.V, m.K); err != nil {
		return err
	}
	table := m.hostInputTable()
	for v, vec := range table {
		if _, err := fmt.Fprintf(bw, "%d", v); err != nil {
			return err
		}
		for _, x := range vec {
			if _, err := fmt.Fprintf(bw, " %g", x); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadText reads embeddings written by SaveText, returning the table indexed
// by vertex id.
func LoadText(r io.Reader) ([][]float64, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	if !br.Scan() {
		return nil, fmt.Errorf("embedding: missing header")
	}
	var v, k int
	if _, err := fmt.Sscanf(br.Text(), "%d %d", &v, &k); err != nil {
		return nil, fmt.Errorf("embedding: bad header %q: %w", br.Text(), err)
	}
	if v <= 0 || k <= 0 {
		return nil, fmt.Errorf("embedding: implausible header V=%d K=%d", v, k)
	}
	table := make([][]float64, v)
	for br.Scan() {
		fields := strings.Fields(br.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != k+1 {
			return nil, fmt.Errorf("embedding: row has %d fields, want %d", len(fields), k+1)
		}
		var id int
		if _, err := fmt.Sscanf(fields[0], "%d", &id); err != nil || id < 0 || id >= v {
			return nil, fmt.Errorf("embedding: bad vertex id %q", fields[0])
		}
		vec := make([]float64, k)
		for i := 0; i < k; i++ {
			if _, err := fmt.Sscanf(fields[1+i], "%g", &vec[i]); err != nil {
				return nil, fmt.Errorf("embedding: bad value %q: %w", fields[1+i], err)
			}
		}
		table[id] = vec
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	for id, vec := range table {
		if vec == nil {
			return nil, fmt.Errorf("embedding: vertex %d missing", id)
		}
	}
	return table, nil
}

// LinkPredictionAUC evaluates the embedding as a link predictor: it scores
// every given positive edge and an equal number of random non-edges by
// input-embedding cosine similarity and returns the AUC of ranking positives
// above negatives (host-side evaluation helper).
func (m *Model) LinkPredictionAUC(g *data.Graph, edges []data.Pair, seed uint64) float64 {
	if len(edges) == 0 {
		return math.NaN()
	}
	table := m.hostInputTable()
	rng := linalg.NewRNG(seed)
	type scored struct {
		s   float64
		pos bool
	}
	var all []scored
	for _, e := range edges {
		all = append(all, scored{Similarity(table[e.U], table[e.V]), true})
		// Sample a non-edge with the same source.
		for tries := 0; tries < 50; tries++ {
			v := int32(rng.Intn(m.V))
			if v == e.U || hasEdge(g, e.U, v) {
				continue
			}
			all = append(all, scored{Similarity(table[e.U], table[v]), false})
			break
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].s < all[b].s })
	var pos, neg, rankSum float64
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].s == all[i].s {
			j++
		}
		avgRank := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += avgRank
				pos++
			} else {
				neg++
			}
		}
		i = j
	}
	if pos == 0 || neg == 0 {
		return math.NaN()
	}
	return (rankSum - pos*(pos+1)/2) / (pos * neg)
}

func hasEdge(g *data.Graph, u, v int32) bool {
	for _, n := range g.Adj[u] {
		if n == v {
			return true
		}
	}
	return false
}
