package gbdt

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/simnet"
)

func newEngine(executors, servers int) *core.Engine {
	opt := core.DefaultOptions()
	opt.Executors = executors
	opt.Servers = servers
	return core.NewEngine(opt)
}

func smallTabular(t *testing.T, rows int) *data.TabularDataset {
	t.Helper()
	ds, err := data.GenerateTabular(data.TabularConfig{Rows: rows, Features: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFitBinEdgesMonotone(t *testing.T) {
	rng := linalg.NewRNG(1)
	sample := make([][]float64, 500)
	for i := range sample {
		sample[i] = []float64{rng.Float64(), rng.NormFloat64()}
	}
	edges := FitBinEdges(sample, 2, 10)
	for f, e := range edges {
		if len(e) != 9 {
			t.Fatalf("feature %d has %d edges", f, len(e))
		}
		for i := 1; i < len(e); i++ {
			if e[i] < e[i-1] {
				t.Fatalf("feature %d edges not monotone: %v", f, e)
			}
		}
	}
}

func TestBinRowBounds(t *testing.T) {
	edges := [][]float64{{0.25, 0.5, 0.75}}
	cases := map[float64]uint8{0.0: 0, 0.25: 0, 0.3: 1, 0.5: 1, 0.6: 2, 0.75: 2, 0.9: 3, 100: 3}
	for v, want := range cases {
		if got := BinRow([]float64{v}, edges)[0]; got != want {
			t.Fatalf("BinRow(%v) = %d, want %d", v, got, want)
		}
	}
}

// Property: binning preserves order — if x <= y then bin(x) <= bin(y).
func TestBinRowOrderProperty(t *testing.T) {
	rng := linalg.NewRNG(2)
	sample := make([][]float64, 200)
	for i := range sample {
		sample[i] = []float64{rng.Float64() * 10}
	}
	edges := FitBinEdges(sample, 1, 16)
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / 6553.5
		b := float64(bRaw) / 6553.5
		if a > b {
			a, b = b, a
		}
		return BinRow([]float64{a}, edges)[0] <= BinRow([]float64{b}, edges)[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGainFormula(t *testing.T) {
	// Perfectly separable: all negative gradient left, positive right.
	g := gain(-10, 5, 0, 10, 1)
	if g <= 0 {
		t.Fatalf("separating split has non-positive gain %v", g)
	}
	// Useless split: left is an empty slice of the parent.
	if got := gain(0, 0, -10, 10, 1); math.Abs(got) > 1e-12 {
		t.Fatalf("empty split gain = %v, want 0", got)
	}
}

func trainBackend(t *testing.T, backend Backend, rows int) (*Model, *data.TabularDataset, float64) {
	t.Helper()
	ds := smallTabular(t, rows)
	e := newEngine(4, 4)
	cfg := DefaultConfig()
	cfg.Trees = 8
	cfg.MaxDepth = 4
	cfg.Backend = backend
	var model *Model
	end := e.Run(func(p *simnet.Proc) {
		r, edges := PrepareRDD(p, e, ds, cfg)
		m, err := Train(p, e, r, ds.Config.Features, edges, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	return model, ds, end
}

func TestTrainPS2ReducesLoss(t *testing.T) {
	model, ds, _ := trainBackend(t, BackendPS2, 2000)
	if len(model.Trees) != 8 {
		t.Fatalf("trees = %d", len(model.Trees))
	}
	first, last := model.Trace.Values[0], model.Trace.Final()
	if last >= first {
		t.Fatalf("loss did not fall: %v -> %v", first, last)
	}
	if last > 0.55 {
		t.Fatalf("final loss %v too high", last)
	}
	// Accuracy on training data.
	correct := 0
	for i, x := range ds.X {
		pred := 0.0
		if model.PredictRaw(x) > 0 {
			pred = 1
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(ds.X)); acc < 0.75 {
		t.Fatalf("accuracy %v too low", acc)
	}
}

func TestBackendsAgreeOnModel(t *testing.T) {
	// The two backends move histograms differently but compute the same
	// math; trees and losses must agree (ties aside, the losses must match
	// to float tolerance).
	a, ds, _ := trainBackend(t, BackendPS2, 1500)
	b, _, _ := trainBackend(t, BackendAllReduce, 1500)
	if math.Abs(a.Trace.Final()-b.Trace.Final()) > 1e-9 {
		t.Fatalf("final losses diverge: PS2=%v XGB=%v", a.Trace.Final(), b.Trace.Final())
	}
	for i, x := range ds.X[:200] {
		if math.Abs(a.PredictRaw(x)-b.PredictRaw(x)) > 1e-9 {
			t.Fatalf("row %d predictions diverge: %v vs %v", i, a.PredictRaw(x), b.PredictRaw(x))
		}
	}
}

func TestRootSplitMatchesBruteForce(t *testing.T) {
	// With zero initial margins, g = 0.5 - y and h = 0.25 for every row; the
	// root split found by the distributed pipeline must equal the braindead
	// single-node scan.
	ds := smallTabular(t, 1200)
	e := newEngine(3, 5)
	cfg := DefaultConfig()
	cfg.Trees = 1
	cfg.MaxDepth = 2
	var model *Model
	var edges [][]float64
	e.Run(func(p *simnet.Proc) {
		r, ed := PrepareRDD(p, e, ds, cfg)
		edges = ed
		m, err := Train(p, e, r, ds.Config.Features, ed, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	root := model.Trees[0].Nodes[0]
	if root.Split == nil {
		t.Fatal("root did not split")
	}

	// Brute force.
	features, bins := ds.Config.Features, cfg.Bins
	gh := make([]float64, features*bins)
	hh := make([]float64, features*bins)
	var G, H float64
	for i, x := range ds.X {
		b := BinRow(x, edges)
		g := 0.5 - ds.Y[i]
		G += g
		H += 0.25
		for f := 0; f < features; f++ {
			gh[f*bins+int(b[f])] += g
			hh[f*bins+int(b[f])] += 0.25
		}
	}
	best := Split{Feature: -1, Gain: math.Inf(-1)}
	for f := 0; f < features; f++ {
		var gl, hl float64
		for b := 0; b < bins-1; b++ {
			gl += gh[f*bins+b]
			hl += hh[f*bins+b]
			if gn := gain(gl, hl, G, H, cfg.Lambda); gn > best.Gain {
				best = Split{Feature: f, BinThreshold: b, Gain: gn}
			}
		}
	}
	if root.Split.Feature != best.Feature || root.Split.BinThreshold != best.BinThreshold {
		t.Fatalf("root split (%d,%d) != brute force (%d,%d)",
			root.Split.Feature, root.Split.BinThreshold, best.Feature, best.BinThreshold)
	}
	if math.Abs(root.Split.Gain-best.Gain) > 1e-6*math.Abs(best.Gain) {
		t.Fatalf("root gain %v != brute force %v", root.Split.Gain, best.Gain)
	}
}

func TestPS2FasterThanAllReduce(t *testing.T) {
	// Fig 11's shape: with enough workers, PS histogram aggregation beats
	// ring AllReduce.
	timeFor := func(backend Backend) float64 {
		ds, err := data.GenerateTabular(data.TabularConfig{Rows: 2000, Features: 80, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		e := newEngine(8, 8)
		cfg := DefaultConfig()
		cfg.Trees = 2
		cfg.MaxDepth = 3
		cfg.Backend = backend
		return e.Run(func(p *simnet.Proc) {
			r, edges := PrepareRDD(p, e, ds, cfg)
			if _, err := Train(p, e, r, ds.Config.Features, edges, cfg); err != nil {
				t.Error(err)
			}
		})
	}
	ps2 := timeFor(BackendPS2)
	xgb := timeFor(BackendAllReduce)
	if ps2 >= xgb {
		t.Fatalf("PS2 (%vs) not faster than AllReduce (%vs)", ps2, xgb)
	}
}

func TestTrainValidation(t *testing.T) {
	e := newEngine(2, 2)
	ds := smallTabular(t, 100)
	e.Run(func(p *simnet.Proc) {
		r, edges := PrepareRDD(p, e, ds, DefaultConfig())
		if _, err := Train(p, e, r, ds.Config.Features, edges, Config{}); err == nil {
			t.Error("zero config accepted")
		}
	})
}

func TestTreePredictRouting(t *testing.T) {
	tree := Tree{Nodes: []TreeNode{
		{Split: &Split{Feature: 0, BinThreshold: 2}, Left: 1, Right: 2},
		{Value: -1, Left: -1, Right: -1},
		{Value: +1, Left: -1, Right: -1},
	}}
	if got := tree.Predict([]uint8{2}); got != -1 {
		t.Fatalf("bin 2 routed to %v, want left (-1)", got)
	}
	if got := tree.Predict([]uint8{3}); got != 1 {
		t.Fatalf("bin 3 routed to %v, want right (+1)", got)
	}
}

func TestMinChildWeightMakesLeaf(t *testing.T) {
	ds := smallTabular(t, 60)
	e := newEngine(2, 2)
	cfg := DefaultConfig()
	cfg.Trees = 1
	cfg.MaxDepth = 6
	cfg.MinChildWeight = 10 // 60 rows carry 15 hessian mass; 10+10 > 15
	var model *Model
	e.Run(func(p *simnet.Proc) {
		r, edges := PrepareRDD(p, e, ds, cfg)
		m, err := Train(p, e, r, ds.Config.Features, edges, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	if len(model.Trees[0].Nodes) != 1 {
		t.Fatalf("tree has %d nodes, want a single leaf", len(model.Trees[0].Nodes))
	}
}

func TestFeatureImportanceFindsSignal(t *testing.T) {
	// The tabular generator's target depends on features 0..4 only; the
	// trained ensemble's importance mass must concentrate there.
	model, _, _ := trainBackend(t, BackendPS2, 2500)
	imp := model.FeatureImportance()
	var signal, total float64
	for f, v := range imp {
		total += v
		if f <= 4 {
			signal += v
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importance sums to %v", total)
	}
	if signal < 0.8 {
		t.Fatalf("only %v of importance on the true signal features", signal)
	}
	top := model.TopFeatures(3)
	for _, f := range top {
		if f > 4 {
			t.Fatalf("top features %v include a noise feature", top)
		}
	}
}

func TestStagedPredictMonotoneAccumulation(t *testing.T) {
	model, ds, _ := trainBackend(t, BackendPS2, 1000)
	staged := model.StagedPredict(ds.X[0])
	if len(staged) != len(model.Trees) {
		t.Fatalf("staged length %d", len(staged))
	}
	if math.Abs(staged[len(staged)-1]-model.PredictRaw(ds.X[0])) > 1e-12 {
		t.Fatal("final staged margin != PredictRaw")
	}
}

func TestEvaluateAndEarlyStopping(t *testing.T) {
	full, err := data.GenerateTabular(data.TabularConfig{Rows: 3000, Features: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	train, test := SplitDataset(full, 0.3, 4)
	if len(train.X)+len(test.X) != 3000 {
		t.Fatalf("split lost rows: %d + %d", len(train.X), len(test.X))
	}
	if len(test.X) < 800 || len(test.X) > 1000 {
		t.Fatalf("test fraction off: %d", len(test.X))
	}
	e := newEngine(4, 4)
	cfg := DefaultConfig()
	cfg.Trees = 10
	cfg.MaxDepth = 4
	var model *Model
	e.Run(func(p *simnet.Proc) {
		r, edges := PrepareRDD(p, e, train, cfg)
		m, err := Train(p, e, r, train.Config.Features, edges, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	trainLoss, trainAcc := model.Evaluate(train.X, train.Y)
	testLoss, testAcc := model.Evaluate(test.X, test.Y)
	if trainAcc < 0.75 || testAcc < 0.7 {
		t.Fatalf("accuracy too low: train %v test %v", trainAcc, testAcc)
	}
	if testLoss < trainLoss*0.8 {
		t.Fatalf("test loss %v implausibly below train loss %v", testLoss, trainLoss)
	}
	best := model.BestIteration(test.X, test.Y)
	if best < 1 || best > len(model.Trees) {
		t.Fatalf("BestIteration = %d out of range", best)
	}
}

func TestSubsampleStillLearns(t *testing.T) {
	ds := smallTabular(t, 2500)
	e := newEngine(4, 4)
	cfg := DefaultConfig()
	cfg.Trees = 10
	cfg.MaxDepth = 4
	cfg.Subsample = 0.6
	cfg.ColsampleByTree = 0.7
	var model *Model
	e.Run(func(p *simnet.Proc) {
		r, edges := PrepareRDD(p, e, ds, cfg)
		m, err := Train(p, e, r, ds.Config.Features, edges, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		model = m
	})
	if model.Trace.Final() >= model.Trace.Values[0] {
		t.Fatalf("stochastic GBDT loss did not fall: %v -> %v", model.Trace.Values[0], model.Trace.Final())
	}
	_, acc := model.Evaluate(ds.X, ds.Y)
	if acc < 0.75 {
		t.Fatalf("stochastic GBDT accuracy %v", acc)
	}
}

func TestColsampleRestrictsSplits(t *testing.T) {
	// With an aggressive column sample, different trees must split on
	// different feature subsets (and never outside their masks). We verify
	// indirectly: a colsample run uses strictly more distinct root features
	// across trees than a deterministic full-feature run (which picks the
	// single best feature every time until margins shift).
	ds := smallTabular(t, 1500)
	train := func(colsample float64) map[int]bool {
		e := newEngine(3, 3)
		cfg := DefaultConfig()
		cfg.Trees = 8
		cfg.MaxDepth = 2
		cfg.ColsampleByTree = colsample
		var model *Model
		e.Run(func(p *simnet.Proc) {
			r, edges := PrepareRDD(p, e, ds, cfg)
			m, err := Train(p, e, r, ds.Config.Features, edges, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			model = m
		})
		roots := map[int]bool{}
		for _, tree := range model.Trees {
			if tree.Nodes[0].Split != nil {
				roots[tree.Nodes[0].Split.Feature] = true
			}
		}
		return roots
	}
	full := train(0)
	sampled := train(0.25)
	if len(sampled) <= len(full) {
		t.Fatalf("colsample did not diversify roots: full=%v sampled=%v", full, sampled)
	}
}

func TestEvalOnClusterMatchesHost(t *testing.T) {
	ds := smallTabular(t, 1500)
	e := newEngine(4, 4)
	cfg := DefaultConfig()
	cfg.Trees = 6
	cfg.MaxDepth = 3
	e.Run(func(p *simnet.Proc) {
		r, edges := PrepareRDD(p, e, ds, cfg)
		model, err := Train(p, e, r, ds.Config.Features, edges, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		metrics := EvalOnCluster(p, e, r, model)
		hostLoss, hostAcc := model.Evaluate(ds.X, ds.Y)
		if metrics.Rows != len(ds.X) {
			t.Errorf("rows = %d", metrics.Rows)
		}
		if math.Abs(metrics.Logloss-hostLoss) > 1e-9 || math.Abs(metrics.Accuracy-hostAcc) > 1e-12 {
			t.Errorf("cluster metrics (%v, %v) != host (%v, %v)", metrics.Logloss, metrics.Accuracy, hostLoss, hostAcc)
		}
	})
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	model, ds, _ := trainBackend(t, BackendPS2, 1000)
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X[:300] {
		if math.Abs(model.PredictRaw(x)-back.PredictRaw(x)) > 1e-12 {
			t.Fatal("loaded model predicts differently")
		}
	}
	if _, err := LoadModel(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadModel(bytes.NewReader([]byte(`{"version":9}`))); err == nil {
		t.Fatal("bad version accepted")
	}
}
