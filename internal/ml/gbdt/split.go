package gbdt

import (
	"math"

	"repro/internal/core"
	"repro/internal/dcv"
	"repro/internal/linalg"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

// trainerState holds the boosting loop's worker-local state: per row the
// current margin, gradient, hessian and the tree node the row currently sits
// in. State is indexed [partition][rowInPartition] — it lives on the
// executors conceptually and never crosses the network.
type trainerState struct {
	e       *core.Engine
	cfg     Config
	dataset *rdd.RDD[Row]

	margins [][]float64
	grads   [][]float64
	hess    [][]float64
	nodeOf  [][]int32

	// PS2 backend: two co-located DCV histograms (paper Figure 8 lines 2-3).
	gradHist *dcv.Vector
	hessHist *dcv.Vector
	histDim  int

	// AllReduce backend: per-worker local histograms gathered here.
	localG [][]float64
	localH [][]float64
}

func newTrainerState(p *simnet.Proc, e *core.Engine, dataset *rdd.RDD[Row], cfg Config) *trainerState {
	parts := dataset.Partitions()
	st := &trainerState{
		e: e, cfg: cfg, dataset: dataset,
		margins: make([][]float64, parts),
		grads:   make([][]float64, parts),
		hess:    make([][]float64, parts),
		nodeOf:  make([][]int32, parts),
	}
	return st
}

func (st *trainerState) ensureHists(p *simnet.Proc, features int) error {
	st.histDim = features * st.cfg.Bins
	if st.cfg.Backend == BackendPS2 && st.gradHist == nil {
		// val gradHist = DCV.dense(dim, 2); val hessHist = derive(gradHist).
		gh, err := st.e.DCV.Dense(p, st.histDim, 2)
		if err != nil {
			return err
		}
		st.gradHist = gh.Fill(p, st.e.Driver(), 0)
		hh, err := gh.Derive()
		if err != nil {
			return err
		}
		st.hessHist = hh.Fill(p, st.e.Driver(), 0)
	}
	if st.cfg.Backend != BackendPS2 && st.localG == nil {
		st.localG = make([][]float64, st.dataset.Partitions())
		st.localH = make([][]float64, st.dataset.Partitions())
	}
	return nil
}

// computeGradients refreshes g and h from the current margins (logistic
// objective: g = p - y, h = p(1-p)) and draws the tree's row sample when
// stochastic boosting is on: excluded rows get node -1 and never enter
// histograms or routing. Pure worker-local computation.
func (st *trainerState) computeGradients(p *simnet.Proc, tree int) {
	cost := st.e.Cluster.Cost
	subsample := st.cfg.Subsample
	rdd.RunPartitions(p, st.dataset, 8, func(tc *rdd.TaskContext, part int, rows []Row) struct{} {
		if st.margins[part] == nil {
			st.margins[part] = make([]float64, len(rows))
			st.grads[part] = make([]float64, len(rows))
			st.hess[part] = make([]float64, len(rows))
			st.nodeOf[part] = make([]int32, len(rows))
		}
		var rng *linalg.RNG
		if subsample > 0 && subsample < 1 {
			rng = linalg.NewRNG(st.cfg.Seed*1009 + uint64(part)*31 + uint64(tree))
		}
		for i := range rows {
			prob := linalg.Sigmoid(st.margins[part][i])
			st.grads[part][i] = prob - rows[i].Label
			st.hess[part][i] = prob * (1 - prob)
			if rng != nil && rng.Float64() >= subsample {
				st.nodeOf[part][i] = -1 // excluded from this tree
				continue
			}
			st.nodeOf[part][i] = 0
		}
		tc.Charge(cost.ElemWork(len(rows) * 2))
		tc.Commit()
		return struct{}{}
	})
}

// featureMask returns the per-tree column sample (nil = all features).
func (st *trainerState) featureMask(tree, features int) []bool {
	cs := st.cfg.ColsampleByTree
	if cs <= 0 || cs >= 1 {
		return nil
	}
	rng := linalg.NewRNG(st.cfg.Seed*2003 + uint64(tree))
	mask := make([]bool, features)
	any := false
	for f := range mask {
		if rng.Float64() < cs {
			mask[f] = true
			any = true
		}
	}
	if !any {
		mask[rng.Intn(features)] = true
	}
	return mask
}

// nodeTotals is the (G, H, rows) summary of one tree node.
type nodeTotals struct {
	G, H float64
	N    int
}

// buildHistograms constructs the grad/hess histograms for the rows of one
// tree node and aggregates them with the configured backend. Returns the
// node totals.
func (st *trainerState) buildHistograms(p *simnet.Proc, node int32, features int) nodeTotals {
	cost := st.e.Cluster.Cost
	if st.cfg.Backend == BackendPS2 {
		st.gradHist.Zero(p, st.e.Driver())
		st.hessHist.Zero(p, st.e.Driver())
	}
	totals := rdd.RunPartitions(p, st.dataset, 24, func(tc *rdd.TaskContext, part int, rows []Row) nodeTotals {
		g := make([]float64, st.histDim)
		h := make([]float64, st.histDim)
		var tot nodeTotals
		for i := range rows {
			if st.nodeOf[part][i] != node {
				continue
			}
			gi, hi := st.grads[part][i], st.hess[part][i]
			tot.G += gi
			tot.H += hi
			tot.N++
			bins := rows[i].Bins
			for f := 0; f < features; f++ {
				idx := f*st.cfg.Bins + int(bins[f])
				g[idx] += gi
				h[idx] += hi
			}
		}
		tc.Charge(cost.ElemWork(tot.N * features))
		tc.Commit()
		switch st.cfg.Backend {
		case BackendPS2:
			// Paper Figure 8: gradHist.add(localGrad); hessHist.add(localHess).
			st.gradHist.AddDense(tc.P, tc.Node, g)
			st.hessHist.AddDense(tc.P, tc.Node, h)
		case BackendAllReduce:
			st.localG[part] = g
			st.localH[part] = h
		case BackendDriver:
			// MLlib: both histograms travel to the driver.
			tc.Node.Send(tc.P, st.e.Cluster.Driver, cost.DenseBytes(2*st.histDim))
			st.localG[part] = g
			st.localH[part] = h
		}
		return tot
	})
	var tot nodeTotals
	for _, t := range totals {
		tot.G += t.G
		tot.H += t.H
		tot.N += t.N
	}
	switch st.cfg.Backend {
	case BackendAllReduce:
		st.ringAllReduce(p)
	case BackendDriver:
		st.driverReduce(p)
	}
	return tot
}

// ringAllReduce simulates XGBoost's histogram AllReduce: every worker
// exchanges 2(W-1) chunks of size S/W with its ring neighbour (reduce-scatter
// followed by all-gather), then holds the full summed histograms. The sums
// themselves are computed once host-side; the simulation charges the
// communication and the per-chunk reduction compute.
func (st *trainerState) ringAllReduce(p *simnet.Proc) {
	execs := st.e.Cluster.Executors
	w := len(execs)
	if w <= 1 {
		return
	}
	histBytes := float64(st.histDim) * 8 * 2 // grad + hess
	chunk := histBytes / float64(w)
	cost := st.e.Cluster.Cost
	for step := 0; step < 2*(w-1); step++ {
		g := p.Sim().NewGroup()
		for i := 0; i < w; i++ {
			src, dst := execs[i], execs[(i+1)%w]
			g.Go("allreduce-step", func(cp *simnet.Proc) {
				src.Send(cp, dst, chunk)
				if step < w-1 {
					dst.Compute(cp, cost.ElemWork(st.histDim*2/w))
				}
			})
		}
		g.Wait(p)
	}
	// Reduce host-side into partition 0's buffers (every worker now has it).
	for part := 1; part < len(st.localG); part++ {
		if st.localG[part] == nil {
			continue
		}
		for i := range st.localG[0] {
			st.localG[0][i] += st.localG[part][i]
			st.localH[0][i] += st.localH[part][i]
		}
	}
}

// boundaryPiece carries a server's partial bins of a feature that straddles
// its range boundary back to the driver for exact merging.
type boundaryPiece struct {
	Feature int
	Offset  int // first bin index covered
	G, H    []float64
}

// serverSplit is one server's split-finding result.
type serverSplit struct {
	Best     Split
	Boundary []boundaryPiece
}

// maskAllows reports whether feature f may be split on under mask.
func maskAllows(mask []bool, f int) bool { return mask == nil || (f < len(mask) && mask[f]) }

// findSplitPS2 runs split finding server-side over the two co-located
// histogram DCVs (the paper's max operator, footnote 5): each server scans
// the features fully contained in its range and returns its best split plus
// raw partial bins for (at most two) boundary-straddling features, which the
// driver merges exactly.
func (st *trainerState) findSplitPS2(p *simnet.Proc, tot nodeTotals, mask []bool) Split {
	cfg := st.cfg
	lambda := cfg.Lambda
	results, err := dcv.ZipReduce(p, st.e.Driver(), st.gradHist, st.e.Cluster.Cost.FlopsPerElem, 64,
		func(sp dcv.ShardSpan) serverSplit {
			if !sp.Contiguous() {
				// The prefix-sum scan and boundary-piece protocol assume each
				// server owns a dense bin range; create the histogram matrices
				// with the default range placement.
				panic("gbdt: split finding requires a contiguous placement")
			}
			res := serverSplit{Best: Split{Feature: -1, Gain: math.Inf(-1)}}
			gRow, hRow := sp.Rows[0], sp.Rows[1]
			firstF := sp.Lo / cfg.Bins
			lastF := (sp.Hi - 1) / cfg.Bins
			for f := firstF; f <= lastF; f++ {
				if !maskAllows(mask, f) {
					continue
				}
				fLo, fHi := f*cfg.Bins, (f+1)*cfg.Bins
				if fLo >= sp.Lo && fHi <= sp.Hi {
					// Fully contained: scan left-to-right prefix sums.
					var gl, hl float64
					for b := 0; b < cfg.Bins-1; b++ {
						gl += gRow[fLo-sp.Lo+b]
						hl += hRow[fLo-sp.Lo+b]
						if hl < cfg.MinChildWeight || tot.H-hl < cfg.MinChildWeight {
							continue
						}
						if gn := gain(gl, hl, tot.G, tot.H, lambda); gn > res.Best.Gain {
							res.Best = Split{Feature: f, BinThreshold: b, Gain: gn, LeftWeight: hl}
						}
					}
					continue
				}
				// Boundary feature: ship the local piece to the driver.
				lo := max(fLo, sp.Lo)
				hi := min(fHi, sp.Hi)
				piece := boundaryPiece{Feature: f, Offset: lo - fLo}
				piece.G = append(piece.G, gRow[lo-sp.Lo:hi-sp.Lo]...)
				piece.H = append(piece.H, hRow[lo-sp.Lo:hi-sp.Lo]...)
				res.Boundary = append(res.Boundary, piece)
			}
			return res
		}, st.hessHist)
	if err != nil {
		panic(err)
	}
	best := Split{Feature: -1, Gain: math.Inf(-1)}
	merged := map[int]*boundaryPiece{}
	for _, r := range results {
		if r.Best.Feature >= 0 && r.Best.Gain > best.Gain {
			best = r.Best
		}
		for _, piece := range r.Boundary {
			m, ok := merged[piece.Feature]
			if !ok {
				m = &boundaryPiece{Feature: piece.Feature, G: make([]float64, cfg.Bins), H: make([]float64, cfg.Bins)}
				merged[piece.Feature] = m
			}
			for i := range piece.G {
				m.G[piece.Offset+i] += piece.G[i]
				m.H[piece.Offset+i] += piece.H[i]
			}
		}
	}
	for f, m := range merged {
		var gl, hl float64
		for b := 0; b < cfg.Bins-1; b++ {
			gl += m.G[b]
			hl += m.H[b]
			if hl < cfg.MinChildWeight || tot.H-hl < cfg.MinChildWeight {
				continue
			}
			if gn := gain(gl, hl, tot.G, tot.H, cfg.Lambda); gn > best.Gain {
				best = Split{Feature: f, BinThreshold: b, Gain: gn, LeftWeight: hl}
			}
		}
	}
	return best
}

// driverReduce sums the per-worker histograms at the driver, charging the
// driver's CPU for every combine — MLlib's aggregation step.
func (st *trainerState) driverReduce(p *simnet.Proc) {
	cost := st.e.Cluster.Cost
	for part := 1; part < len(st.localG); part++ {
		if st.localG[part] == nil {
			continue
		}
		st.e.Cluster.Driver.Compute(p, cost.ElemWork(st.histDim*2))
		for i := range st.localG[0] {
			st.localG[0][i] += st.localG[part][i]
			st.localH[0][i] += st.localH[part][i]
		}
	}
}

// findSplitDriver scans the driver-aggregated histograms on the driver.
func (st *trainerState) findSplitDriver(p *simnet.Proc, tot nodeTotals, features int, mask []bool) Split {
	cost := st.e.Cluster.Cost
	st.e.Cluster.Driver.Compute(p, cost.ElemWork(st.histDim))
	best := Split{Feature: -1, Gain: math.Inf(-1)}
	gh, hh := st.localG[0], st.localH[0]
	for f := 0; f < features; f++ {
		if !maskAllows(mask, f) {
			continue
		}
		var gl, hl float64
		for b := 0; b < st.cfg.Bins-1; b++ {
			gl += gh[f*st.cfg.Bins+b]
			hl += hh[f*st.cfg.Bins+b]
			if hl < st.cfg.MinChildWeight || tot.H-hl < st.cfg.MinChildWeight {
				continue
			}
			if gn := gain(gl, hl, tot.G, tot.H, st.cfg.Lambda); gn > best.Gain {
				best = Split{Feature: f, BinThreshold: b, Gain: gn, LeftWeight: hl}
			}
		}
	}
	return best
}

// findSplitAllReduce scans the full (already all-reduced) histograms; every
// worker does this redundantly in XGBoost, so the compute is charged on all
// executors in parallel.
func (st *trainerState) findSplitAllReduce(p *simnet.Proc, tot nodeTotals, features int, mask []bool) Split {
	cost := st.e.Cluster.Cost
	g := p.Sim().NewGroup()
	for _, exec := range st.e.Cluster.Executors {
		exec := exec
		g.Go("scan", func(cp *simnet.Proc) {
			exec.Compute(cp, cost.ElemWork(st.histDim))
		})
	}
	g.Wait(p)
	best := Split{Feature: -1, Gain: math.Inf(-1)}
	gh, hh := st.localG[0], st.localH[0]
	for f := 0; f < features; f++ {
		if !maskAllows(mask, f) {
			continue
		}
		var gl, hl float64
		for b := 0; b < st.cfg.Bins-1; b++ {
			gl += gh[f*st.cfg.Bins+b]
			hl += hh[f*st.cfg.Bins+b]
			if hl < st.cfg.MinChildWeight || tot.H-hl < st.cfg.MinChildWeight {
				continue
			}
			if gn := gain(gl, hl, tot.G, tot.H, st.cfg.Lambda); gn > best.Gain {
				best = Split{Feature: f, BinThreshold: b, Gain: gn, LeftWeight: hl}
			}
		}
	}
	return best
}

// growTree builds one tree level by level, node by node (paper Figure 8's
// outer loop).
func (st *trainerState) growTree(p *simnet.Proc, features, treeIdx int) (*Tree, error) {
	if err := st.ensureHists(p, features); err != nil {
		return nil, err
	}
	mask := st.featureMask(treeIdx, features)
	tree := &Tree{}
	type work struct {
		node  int32
		depth int
	}
	tree.Nodes = append(tree.Nodes, TreeNode{Left: -1, Right: -1})
	queue := []work{{node: 0, depth: 1}}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		tot := st.buildHistograms(p, w.node, features)
		leafValue := 0.0
		if tot.H+st.cfg.Lambda > 0 {
			leafValue = -st.cfg.LearningRate * tot.G / (tot.H + st.cfg.Lambda)
		}
		if w.depth >= st.cfg.MaxDepth || tot.H < 2*st.cfg.MinChildWeight {
			tree.Nodes[w.node].Value = leafValue
			continue
		}
		var split Split
		switch st.cfg.Backend {
		case BackendPS2:
			split = st.findSplitPS2(p, tot, mask)
		case BackendAllReduce:
			split = st.findSplitAllReduce(p, tot, features, mask)
		default:
			split = st.findSplitDriver(p, tot, features, mask)
		}
		if split.Feature < 0 || split.Gain <= 1e-12 {
			tree.Nodes[w.node].Value = leafValue
			continue
		}
		// Min-child-weight was enforced during the histogram scan, so the
		// split can be applied directly — no extra counting stage.
		st.e.RDD.Broadcast(p, 24) // ship the split decision
		sp := split
		li := int32(len(tree.Nodes))
		tree.Nodes = append(tree.Nodes, TreeNode{Left: -1, Right: -1})
		ri := int32(len(tree.Nodes))
		tree.Nodes = append(tree.Nodes, TreeNode{Left: -1, Right: -1})
		tree.Nodes[w.node].Split = &sp
		tree.Nodes[w.node].Left = int(li)
		tree.Nodes[w.node].Right = int(ri)
		st.routeRows(p, w.node, li, ri, split)
		queue = append(queue, work{node: li, depth: w.depth + 1}, work{node: ri, depth: w.depth + 1})
	}
	return tree, nil
}

// routeRows reassigns a node's rows to its children.
func (st *trainerState) routeRows(p *simnet.Proc, node, left, right int32, split Split) {
	cost := st.e.Cluster.Cost
	rdd.RunPartitions(p, st.dataset, 8, func(tc *rdd.TaskContext, part int, rows []Row) struct{} {
		n := 0
		for i := range rows {
			if st.nodeOf[part][i] != node {
				continue
			}
			n++
			if int(rows[i].Bins[split.Feature]) <= split.BinThreshold {
				st.nodeOf[part][i] = left
			} else {
				st.nodeOf[part][i] = right
			}
		}
		tc.Charge(cost.ElemWork(n))
		tc.Commit()
		return struct{}{}
	})
}

// applyTree adds the new tree's predictions to every row's margin and
// returns the resulting training logloss.
func (st *trainerState) applyTree(p *simnet.Proc, tree *Tree) float64 {
	cost := st.e.Cluster.Cost
	losses := rdd.RunPartitions(p, st.dataset, 16, func(tc *rdd.TaskContext, part int, rows []Row) [2]float64 {
		var lossSum float64
		for i := range rows {
			st.margins[part][i] += tree.Predict(rows[i].Bins)
			lossSum += linalg.LogLoss(st.margins[part][i], rows[i].Label)
		}
		tc.Charge(cost.ElemWork(len(rows) * len(tree.Nodes)))
		tc.Commit()
		return [2]float64{lossSum, float64(len(rows))}
	})
	var lossSum, n float64
	for _, l := range losses {
		lossSum += l[0]
		n += l[1]
	}
	if n == 0 {
		return math.NaN()
	}
	return lossSum / n
}
