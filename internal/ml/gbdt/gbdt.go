// Package gbdt implements histogram-based gradient boosting decision trees
// (paper Section 5.2.3, Figures 7 and 8): per tree node, workers build
// first- and second-order gradient histograms over their data partitions and
// aggregate them; a split criterion is found over the aggregated histograms;
// rows flow to child nodes; leaves get Newton-step values.
//
// Two aggregation backends reproduce the paper's Figure 11 comparison:
//
//   - BackendPS2: the histograms are two co-located DCVs; workers push local
//     histograms with the DCV add operator and split finding runs
//     server-side (the paper's max operator, footnote 5) — gradient
//     histograms never travel back to workers.
//   - BackendAllReduce: XGBoost's strategy — a ring AllReduce gives every
//     worker the full histograms, each worker finds the split redundantly.
package gbdt

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

// Backend selects the histogram aggregation strategy.
type Backend int

const (
	// BackendPS2 aggregates on parameter servers with server-side split
	// finding.
	BackendPS2 Backend = iota
	// BackendAllReduce aggregates with a worker ring (XGBoost).
	BackendAllReduce
	// BackendDriver ships every worker's full histograms to the driver and
	// finds splits there (Spark MLlib's strategy — the single-node
	// aggregation bottleneck).
	BackendDriver
)

func (b Backend) String() string {
	switch b {
	case BackendPS2:
		return "PS2"
	case BackendAllReduce:
		return "XGBoost"
	default:
		return "MLlib"
	}
}

// Config holds the GBDT hyperparameters; defaults follow the paper's Table 4
// with the histogram size scaled from 100 to 20 (matching the 10×-scaled
// datasets).
type Config struct {
	Trees        int
	MaxDepth     int
	Bins         int
	LearningRate float64
	Lambda       float64 // L2 regularization on leaf weights
	// MinChildWeight is the minimum hessian mass per child (XGBoost's
	// min_child_weight); it is evaluated from the histograms during split
	// finding, so no extra counting stage is needed. For logistic loss at
	// margin 0 one row contributes 0.25.
	MinChildWeight float64
	Backend        Backend
	SampleRows     int // rows sampled to fit quantile bin edges
	// Subsample, when in (0,1), trains each tree on a Bernoulli row sample
	// (stochastic gradient boosting). 0 or 1 uses all rows.
	Subsample float64
	// ColsampleByTree, when in (0,1), restricts each tree's split search to
	// a random feature subset (XGBoost's colsample_bytree).
	ColsampleByTree float64
	Seed            uint64
}

// DefaultConfig returns the Table 4 hyperparameters (scaled histogram size).
func DefaultConfig() Config {
	return Config{
		Trees:          20,
		MaxDepth:       5,
		Bins:           50,
		LearningRate:   0.1,
		Lambda:         1.0,
		MinChildWeight: 2.5, // ~10 rows of hessian mass at margin 0
		SampleRows:     2000,
		Seed:           17,
	}
}

// Row is one binned training example inside the dataflow.
type Row struct {
	Bins  []uint8
	Label float64
}

// Split is one internal tree node's decision: rows with
// bin(Feature) <= BinThreshold go left.
type Split struct {
	Feature      int
	BinThreshold int
	Gain         float64
	// LeftWeight is the hessian mass of the left child, recorded during the
	// histogram scan so min-child-weight is enforced without another pass
	// over the data.
	LeftWeight float64
}

// TreeNode is a node of a regression tree over binned features.
type TreeNode struct {
	Split *Split  // nil for leaves
	Value float64 // leaf value (scaled by learning rate already)
	Left  int     // child indices into Tree.Nodes, -1 when leaf
	Right int
}

// Tree is one regression tree.
type Tree struct {
	Nodes []TreeNode
}

// Predict returns the tree's output for a binned row.
func (t *Tree) Predict(bins []uint8) float64 {
	i := 0
	for {
		n := t.Nodes[i]
		if n.Split == nil {
			return n.Value
		}
		if int(bins[n.Split.Feature]) <= n.Split.BinThreshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Model is the boosted ensemble plus binning metadata.
type Model struct {
	Trees    []Tree
	Edges    [][]float64 // per-feature bin edges
	Features int
	Bins     int
	Trace    *core.Trace // training logloss after each tree
}

// PredictRaw returns the ensemble margin for a raw (unbinned) feature row.
func (m *Model) PredictRaw(x []float64) float64 {
	bins := BinRow(x, m.Edges)
	var f float64
	for i := range m.Trees {
		f += m.Trees[i].Predict(bins)
	}
	return f
}

// FitBinEdges computes per-feature quantile bin edges from sample rows.
// Edges[f] has Bins-1 thresholds; bin b covers (edge[b-1], edge[b]].
func FitBinEdges(sample [][]float64, features, bins int) [][]float64 {
	edges := make([][]float64, features)
	vals := make([]float64, len(sample))
	for f := 0; f < features; f++ {
		for i, row := range sample {
			vals[i] = row[f]
		}
		sort.Float64s(vals)
		e := make([]float64, bins-1)
		for b := 1; b < bins; b++ {
			idx := b * len(vals) / bins
			if idx >= len(vals) {
				idx = len(vals) - 1
			}
			e[b-1] = vals[idx]
		}
		edges[f] = e
	}
	return edges
}

// BinRow maps raw feature values to bin indices via binary search.
func BinRow(x []float64, edges [][]float64) []uint8 {
	bins := make([]uint8, len(x))
	for f, v := range x {
		e := edges[f]
		lo, hi := 0, len(e)
		for lo < hi {
			mid := (lo + hi) / 2
			if v <= e[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		bins[f] = uint8(lo)
	}
	return bins
}

// gain computes the split gain given left/parent gradient and hessian sums.
func gain(gl, hl, g, h, lambda float64) float64 {
	gr, hr := g-gl, h-hl
	return 0.5 * (gl*gl/(hl+lambda) + gr*gr/(hr+lambda) - g*g/(h+lambda))
}

// Train boosts Config.Trees trees on the dataset. The RDD rows must be
// pre-binned (see PrepareRDD). features is the raw feature count.
func Train(p *simnet.Proc, e *core.Engine, dataset *rdd.RDD[Row], features int, edges [][]float64, cfg Config) (*Model, error) {
	if cfg.Trees <= 0 || cfg.MaxDepth < 1 || cfg.Bins < 2 || cfg.Bins > 256 {
		return nil, fmt.Errorf("gbdt: invalid config %+v", cfg)
	}
	model := &Model{Edges: edges, Features: features, Bins: cfg.Bins,
		Trace: &core.Trace{Name: cfg.Backend.String() + "-GBDT"}}

	// Partition-local boosting state: current margin per row.
	state := newTrainerState(p, e, dataset, cfg)

	for t := 0; t < cfg.Trees; t++ {
		state.computeGradients(p, t)
		tree, err := state.growTree(p, features, t)
		if err != nil {
			return nil, err
		}
		model.Trees = append(model.Trees, *tree)
		loss := state.applyTree(p, tree)
		model.Trace.Add(p.Now(), loss)
	}
	return model, nil
}

// PrepareRDD bins a tabular dataset and loads it as a cached RDD: the
// driver fits quantile edges on a sample (Spark-style sketch), broadcasts
// them, and the executors bin their partitions.
func PrepareRDD(p *simnet.Proc, e *core.Engine, ds *data.TabularDataset, cfg Config) (*rdd.RDD[Row], [][]float64) {
	features := ds.Config.Features
	sampleN := cfg.SampleRows
	if sampleN > len(ds.X) {
		sampleN = len(ds.X)
	}
	rng := linalg.NewRNG(cfg.Seed + 99)
	sample := make([][]float64, sampleN)
	for i := range sample {
		sample[i] = ds.X[rng.Intn(len(ds.X))]
	}
	// The sample travels to the driver; the edges travel back.
	e.RDD.Broadcast(p, float64(sampleN*features)*8/float64(e.RDD.NumExecutors()))
	edges := FitBinEdges(sample, features, cfg.Bins)
	e.RDD.Broadcast(p, float64(features*(cfg.Bins-1))*8)

	parts := e.RDD.NumExecutors()
	// Bin lazily inside the source so the binning compute lands on executors.
	raw := make([][]int, parts)
	for i := range ds.X {
		raw[i%parts] = append(raw[i%parts], i)
	}
	cost := e.Cluster.Cost
	r := rdd.Source(e.RDD, parts, func(tc *rdd.TaskContext, part int) []Row {
		out := make([]Row, len(raw[part]))
		for k, idx := range raw[part] {
			out[k] = Row{Bins: BinRow(ds.X[idx], edges), Label: ds.Y[idx]}
		}
		tc.Charge(cost.ElemWork(len(out) * features))
		return out
	}).Cache()
	return r, edges
}
