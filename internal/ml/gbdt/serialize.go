package gbdt

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelFile is the on-disk JSON layout. Splits are flattened so the format
// has no pointers.
type modelFile struct {
	Version  int          `json:"version"`
	Features int          `json:"features"`
	Bins     int          `json:"bins"`
	Edges    [][]float64  `json:"edges"`
	Trees    [][]nodeJSON `json:"trees"`
}

type nodeJSON struct {
	Feature      int     `json:"feature"` // -1 for leaves
	BinThreshold int     `json:"bin"`
	Gain         float64 `json:"gain"`
	Value        float64 `json:"value"`
	Left         int     `json:"left"`
	Right        int     `json:"right"`
}

// Save writes the trained ensemble as JSON.
func (m *Model) Save(w io.Writer) error {
	mf := modelFile{Version: 1, Features: m.Features, Bins: m.Bins, Edges: m.Edges}
	for _, tree := range m.Trees {
		nodes := make([]nodeJSON, len(tree.Nodes))
		for i, n := range tree.Nodes {
			nj := nodeJSON{Feature: -1, Value: n.Value, Left: n.Left, Right: n.Right}
			if n.Split != nil {
				nj.Feature = n.Split.Feature
				nj.BinThreshold = n.Split.BinThreshold
				nj.Gain = n.Split.Gain
			}
			nodes[i] = nj
		}
		mf.Trees = append(mf.Trees, nodes)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(mf)
}

// LoadModel reads a JSON ensemble written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("gbdt: decode model: %w", err)
	}
	if mf.Version != 1 {
		return nil, fmt.Errorf("gbdt: unsupported model version %d", mf.Version)
	}
	if mf.Features <= 0 || mf.Bins < 2 || len(mf.Edges) != mf.Features {
		return nil, fmt.Errorf("gbdt: corrupt model header (features=%d bins=%d edges=%d)", mf.Features, mf.Bins, len(mf.Edges))
	}
	m := &Model{Features: mf.Features, Bins: mf.Bins, Edges: mf.Edges}
	for ti, nodes := range mf.Trees {
		tree := Tree{Nodes: make([]TreeNode, len(nodes))}
		for i, nj := range nodes {
			node := TreeNode{Value: nj.Value, Left: nj.Left, Right: nj.Right}
			if nj.Feature >= 0 {
				if nj.Feature >= mf.Features || nj.Left < 0 || nj.Left >= len(nodes) || nj.Right < 0 || nj.Right >= len(nodes) {
					return nil, fmt.Errorf("gbdt: corrupt node %d of tree %d", i, ti)
				}
				node.Split = &Split{Feature: nj.Feature, BinThreshold: nj.BinThreshold, Gain: nj.Gain}
			}
			tree.Nodes[i] = node
		}
		m.Trees = append(m.Trees, tree)
	}
	return m, nil
}
