package gbdt

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

// FeatureImportance returns each feature's total split gain across the
// ensemble, normalized to sum to 1 (XGBoost's "gain" importance).
func (m *Model) FeatureImportance() []float64 {
	imp := make([]float64, m.Features)
	var total float64
	for _, tree := range m.Trees {
		for _, node := range tree.Nodes {
			if node.Split != nil && node.Split.Gain > 0 {
				imp[node.Split.Feature] += node.Split.Gain
				total += node.Split.Gain
			}
		}
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// TopFeatures returns the indices of the n most important features,
// descending.
func (m *Model) TopFeatures(n int) []int {
	imp := m.FeatureImportance()
	idx := make([]int, len(imp))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return imp[idx[a]] > imp[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// StagedPredict returns the margin of x after each tree — the standard tool
// for picking an early-stopping point.
func (m *Model) StagedPredict(x []float64) []float64 {
	bins := BinRow(x, m.Edges)
	out := make([]float64, len(m.Trees))
	var f float64
	for i := range m.Trees {
		f += m.Trees[i].Predict(bins)
		out[i] = f
	}
	return out
}

// Evaluate computes logloss and accuracy of the ensemble on a dataset.
func (m *Model) Evaluate(X [][]float64, Y []float64) (logloss, accuracy float64) {
	if len(X) == 0 {
		return math.NaN(), math.NaN()
	}
	correct := 0
	for i, x := range X {
		z := m.PredictRaw(x)
		logloss += linalg.LogLoss(z, Y[i])
		pred := 0.0
		if z > 0 {
			pred = 1
		}
		if pred == Y[i] {
			correct++
		}
	}
	return logloss / float64(len(X)), float64(correct) / float64(len(X))
}

// BestIteration scans staged validation losses and returns the tree count
// minimizing held-out logloss — how many trees early stopping would keep.
func (m *Model) BestIteration(X [][]float64, Y []float64) int {
	if len(m.Trees) == 0 || len(X) == 0 {
		return 0
	}
	losses := make([]float64, len(m.Trees))
	for i, x := range X {
		staged := m.StagedPredict(x)
		for t, z := range staged {
			losses[t] += linalg.LogLoss(z, Y[i])
		}
	}
	best := 0
	for t := 1; t < len(losses); t++ {
		if losses[t] < losses[best] {
			best = t
		}
	}
	return best + 1
}

// SplitDataset partitions a tabular dataset into train and test halves with
// a deterministic shuffle — the usual evaluation harness companion.
func SplitDataset(ds *data.TabularDataset, testFraction float64, seed uint64) (train, test *data.TabularDataset) {
	n := len(ds.X)
	perm := linalg.NewRNG(seed).Perm(n)
	cut := int(float64(n) * (1 - testFraction))
	train = &data.TabularDataset{Config: ds.Config}
	test = &data.TabularDataset{Config: ds.Config}
	for i, p := range perm {
		if i < cut {
			train.X = append(train.X, ds.X[p])
			train.Y = append(train.Y, ds.Y[p])
		} else {
			test.X = append(test.X, ds.X[p])
			test.Y = append(test.Y, ds.Y[p])
		}
	}
	return train, test
}

// ClusterMetrics is the result of distributed scoring.
type ClusterMetrics struct {
	Logloss  float64
	Accuracy float64
	Rows     int
}

// EvalOnCluster scores a binned dataset distributedly: the driver broadcasts
// the serialized ensemble to every executor, each partition scores locally,
// and only scalar partials return. modelBytes is charged for the broadcast
// (roughly 32 bytes per tree node).
func EvalOnCluster(p *simnet.Proc, e *core.Engine, dataset *rdd.RDD[Row], m *Model) ClusterMetrics {
	nodes := 0
	for i := range m.Trees {
		nodes += len(m.Trees[i].Nodes)
	}
	e.RDD.Broadcast(p, float64(nodes)*32+e.Cluster.Cost.RequestOverheadB)
	type partial struct {
		Loss    float64
		Correct int
		Rows    int
	}
	cost := e.Cluster.Cost
	parts := rdd.RunPartitions(p, dataset, 24, func(tc *rdd.TaskContext, part int, rows []Row) partial {
		var out partial
		for i := range rows {
			var z float64
			for tr := range m.Trees {
				z += m.Trees[tr].Predict(rows[i].Bins)
			}
			out.Loss += linalg.LogLoss(z, rows[i].Label)
			pred := 0.0
			if z > 0 {
				pred = 1
			}
			if pred == rows[i].Label {
				out.Correct++
			}
			out.Rows++
		}
		tc.Charge(cost.ElemWork(len(rows) * nodes))
		tc.Commit()
		return out
	})
	var total partial
	for _, pt := range parts {
		total.Loss += pt.Loss
		total.Correct += pt.Correct
		total.Rows += pt.Rows
	}
	if total.Rows == 0 {
		return ClusterMetrics{Logloss: math.NaN(), Accuracy: math.NaN()}
	}
	return ClusterMetrics{
		Logloss:  total.Loss / float64(total.Rows),
		Accuracy: float64(total.Correct) / float64(total.Rows),
		Rows:     total.Rows,
	}
}
