package linalg

import "fmt"

// AliasSampler draws from an arbitrary discrete distribution in O(1) per
// sample using Vose's alias method. DeepWalk-style training uses it for
// unigram^0.75 negative sampling (word2vec's noise distribution), and it is
// generally the right tool whenever a skewed categorical must be sampled
// millions of times.
type AliasSampler struct {
	prob  []float64
	alias []int32
}

// NewAliasSampler builds a sampler over weights (non-negative, not all
// zero).
func NewAliasSampler(weights []float64) (*AliasSampler, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("linalg: alias sampler needs at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("linalg: negative weight %v at %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("linalg: all weights zero")
	}
	s := &AliasSampler{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		s.prob[g] = 1
	}
	for _, l := range small {
		s.prob[l] = 1
	}
	return s, nil
}

// Sample draws one index.
func (s *AliasSampler) Sample(rng *RNG) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return int(s.alias[i])
}

// N returns the number of categories.
func (s *AliasSampler) N() int { return len(s.prob) }
