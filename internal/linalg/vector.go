// Package linalg provides the dense and sparse vector kernels used by the ML
// algorithms and the parameter server. Everything is float64, stdlib-only,
// and allocation-conscious: the hot paths (dot, axpy, gradient accumulation)
// avoid per-call allocation.
package linalg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// SparseVector is a sparse vector in coordinate form with strictly increasing
// indices. The zero value is an empty vector.
type SparseVector struct {
	Indices []int
	Values  []float64
}

// NewSparse builds a sparse vector from parallel index/value slices, sorting
// them by index and merging duplicates by addition. Indices that are already
// strictly increasing — the common case, since the data loaders emit sorted
// features — skip the pair-struct sort entirely and copy straight through.
func NewSparse(indices []int, values []float64) (*SparseVector, error) {
	if len(indices) != len(values) {
		return nil, fmt.Errorf("linalg: NewSparse length mismatch: %d indices, %d values", len(indices), len(values))
	}
	if strictlyIncreasing(indices) {
		return &SparseVector{
			Indices: append([]int(nil), indices...),
			Values:  append([]float64(nil), values...),
		}, nil
	}
	type pair struct {
		i int
		v float64
	}
	pairs := make([]pair, len(indices))
	for k := range indices {
		pairs[k] = pair{indices[k], values[k]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	sv := &SparseVector{
		Indices: make([]int, 0, len(pairs)),
		Values:  make([]float64, 0, len(pairs)),
	}
	for _, p := range pairs {
		if n := len(sv.Indices); n > 0 && sv.Indices[n-1] == p.i {
			sv.Values[n-1] += p.v
			continue
		}
		sv.Indices = append(sv.Indices, p.i)
		sv.Values = append(sv.Values, p.v)
	}
	return sv, nil
}

// strictlyIncreasing reports whether idx is already in strictly ascending
// order (no duplicates), i.e. already a valid SparseVector index list.
func strictlyIncreasing(idx []int) bool {
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			return false
		}
	}
	return true
}

// Nnz returns the number of stored entries.
func (v *SparseVector) Nnz() int { return len(v.Indices) }

// Clone returns a deep copy.
func (v *SparseVector) Clone() *SparseVector {
	return &SparseVector{
		Indices: append([]int(nil), v.Indices...),
		Values:  append([]float64(nil), v.Values...),
	}
}

// DotDense returns <v, w> against a dense vector. Indices beyond len(w) are
// ignored.
func (v *SparseVector) DotDense(w []float64) float64 {
	var s float64
	for k, i := range v.Indices {
		if i < len(w) {
			s += v.Values[k] * w[i]
		}
	}
	return s
}

// AddToDense computes w += alpha * v in place.
func (v *SparseVector) AddToDense(w []float64, alpha float64) {
	for k, i := range v.Indices {
		if i < len(w) {
			w[i] += alpha * v.Values[k]
		}
	}
}

// Norm2 returns the Euclidean norm of the sparse vector.
func (v *SparseVector) Norm2() float64 {
	var s float64
	for _, x := range v.Values {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dense kernels.
//
// The reductions (Dot, Sum, Norm2) follow one fixed summation contract,
// shared with par.Reduce so serial and shard-parallel execution are
// bit-identical (ARCHITECTURE §14):
//
//   - the input is processed in par.ChunkSize chunks, ascending;
//   - within a chunk, four accumulator lanes take elements i, i+1, i+2, i+3
//     and combine as ((s0+s1)+s2)+s3, then the ≤3 tail elements add in order;
//   - chunk partials add into the running total in ascending chunk order.
//
// This order is part of the kernels' observable behavior: it reassociates
// floating-point summation versus a naive single-accumulator loop, but it
// never varies between runs, core counts, or serial/parallel paths.
//
// The element-wise kernels (Axpy, Scale, Fill, Add, Sub, Mul, Div) are
// 4-way unrolled too; their results are independent of any split.
//
// Inputs below par.MinParallel run inline and allocation-free; larger
// inputs fan the chunks out over par's bounded worker pool.

// dotRange is the unrolled single-chunk dot kernel.
func dotRange(a, b []float64) float64 {
	b = b[:len(a)] // hoist the bounds check out of the loop
	var s0, s1, s2, s3 float64
	i := 0
	for ; i <= len(a)-4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := ((s0 + s1) + s2) + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// sumRange is the unrolled single-chunk sum kernel.
func sumRange(a []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i <= len(a)-4; i += 4 {
		s0 += a[i]
		s1 += a[i+1]
		s2 += a[i+2]
		s3 += a[i+3]
	}
	s := ((s0 + s1) + s2) + s3
	for ; i < len(a); i++ {
		s += a[i]
	}
	return s
}

// sumSqRange is the unrolled single-chunk sum-of-squares kernel.
func sumSqRange(a []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i <= len(a)-4; i += 4 {
		s0 += a[i] * a[i]
		s1 += a[i+1] * a[i+1]
		s2 += a[i+2] * a[i+2]
		s3 += a[i+3] * a[i+3]
	}
	s := ((s0 + s1) + s2) + s3
	for ; i < len(a); i++ {
		s += a[i] * a[i]
	}
	return s
}

// Dot returns the inner product of two equal-length dense vectors, summed in
// the fixed chunked order documented above.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) >= par.MinParallel {
		return par.Reduce(len(a), func(lo, hi int) float64 { return dotRange(a[lo:hi], b[lo:hi]) })
	}
	var s float64
	for lo := 0; lo < len(a); lo += par.ChunkSize {
		hi := min(lo+par.ChunkSize, len(a))
		s += dotRange(a[lo:hi], b[lo:hi])
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) >= par.MinParallel {
		par.Range(len(x), func(lo, hi int) { axpyRange(alpha, x[lo:hi], y[lo:hi]) })
		return
	}
	axpyRange(alpha, x, y)
}

func axpyRange(alpha float64, x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i <= len(x)-4; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	if len(x) >= par.MinParallel {
		par.Range(len(x), func(lo, hi int) { scaleRange(alpha, x[lo:hi]) })
		return
	}
	scaleRange(alpha, x)
}

func scaleRange(alpha float64, x []float64) {
	i := 0
	for ; i <= len(x)-4; i += 4 {
		x[i] *= alpha
		x[i+1] *= alpha
		x[i+2] *= alpha
		x[i+3] *= alpha
	}
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of a dense vector (chunked summation
// order as documented above).
func Norm2(x []float64) float64 {
	return math.Sqrt(SumSquares(x))
}

// SumSquares returns the sum of squared elements in the fixed chunked order
// (the partial the distributed Norm2 ships per shard).
func SumSquares(x []float64) float64 {
	if len(x) >= par.MinParallel {
		return par.Reduce(len(x), func(lo, hi int) float64 { return sumSqRange(x[lo:hi]) })
	}
	var s float64
	for lo := 0; lo < len(x); lo += par.ChunkSize {
		hi := min(lo+par.ChunkSize, len(x))
		s += sumSqRange(x[lo:hi])
	}
	return s
}

// Sum returns the sum of the elements in the fixed chunked order.
func Sum(x []float64) float64 {
	if len(x) >= par.MinParallel {
		return par.Reduce(len(x), func(lo, hi int) float64 { return sumRange(x[lo:hi]) })
	}
	var s float64
	for lo := 0; lo < len(x); lo += par.ChunkSize {
		hi := min(lo+par.ChunkSize, len(x))
		s += sumRange(x[lo:hi])
	}
	return s
}

// NnzDense counts nonzero entries of a dense vector.
func NnzDense(x []float64) int {
	n := 0
	for _, v := range x {
		if v != 0 {
			n++
		}
	}
	return n
}

// Fill sets every element of x to c.
func Fill(x []float64, c float64) {
	if len(x) >= par.MinParallel {
		par.Range(len(x), func(lo, hi int) { fillRange(x[lo:hi], c) })
		return
	}
	fillRange(x, c)
}

func fillRange(x []float64, c float64) {
	for i := range x {
		x[i] = c
	}
}

// Add computes dst += src element-wise in place.
func Add(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: Add length mismatch %d vs %d", len(dst), len(src)))
	}
	if len(dst) >= par.MinParallel {
		par.Range(len(dst), func(lo, hi int) { addRange(dst[lo:hi], src[lo:hi]) })
		return
	}
	addRange(dst, src)
}

func addRange(dst, src []float64) {
	src = src[:len(dst)]
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// Sub computes dst -= src element-wise in place.
func Sub(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(dst), len(src)))
	}
	if len(dst) >= par.MinParallel {
		par.Range(len(dst), func(lo, hi int) { subRange(dst[lo:hi], src[lo:hi]) })
		return
	}
	subRange(dst, src)
}

func subRange(dst, src []float64) {
	src = src[:len(dst)]
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		dst[i] -= src[i]
		dst[i+1] -= src[i+1]
		dst[i+2] -= src[i+2]
		dst[i+3] -= src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] -= src[i]
	}
}

// Mul computes dst *= src element-wise in place.
func Mul(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: Mul length mismatch %d vs %d", len(dst), len(src)))
	}
	if len(dst) >= par.MinParallel {
		par.Range(len(dst), func(lo, hi int) { mulRange(dst[lo:hi], src[lo:hi]) })
		return
	}
	mulRange(dst, src)
}

func mulRange(dst, src []float64) {
	src = src[:len(dst)]
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		dst[i] *= src[i]
		dst[i+1] *= src[i+1]
		dst[i+2] *= src[i+2]
		dst[i+3] *= src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] *= src[i]
	}
}

// Div computes dst /= src element-wise in place (IEEE-754 on zero
// denominators, like the DCV operator it backs).
func Div(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: Div length mismatch %d vs %d", len(dst), len(src)))
	}
	if len(dst) >= par.MinParallel {
		par.Range(len(dst), func(lo, hi int) { divRange(dst[lo:hi], src[lo:hi]) })
		return
	}
	divRange(dst, src)
}

func divRange(dst, src []float64) {
	src = src[:len(dst)]
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		dst[i] /= src[i]
		dst[i+1] /= src[i+1]
		dst[i+2] /= src[i+2]
		dst[i+3] /= src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] /= src[i]
	}
}

// Sigmoid returns 1/(1+exp(-x)), computed stably for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1.0 / (1.0 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1.0 + e)
}

// LogLoss returns the logistic loss -[y*log(p) + (1-y)*log(1-p)] for label
// y in {0,1} and margin z = w.x, computed from the margin for stability.
func LogLoss(z float64, y float64) float64 {
	// log(1+exp(-z)) if y==1; log(1+exp(z)) if y==0.
	if y > 0.5 {
		return log1pExp(-z)
	}
	return log1pExp(z)
}

func log1pExp(x float64) float64 {
	if x > 35 {
		return x
	}
	return math.Log1p(math.Exp(x))
}
