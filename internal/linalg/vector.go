// Package linalg provides the dense and sparse vector kernels used by the ML
// algorithms and the parameter server. Everything is float64, stdlib-only,
// and allocation-conscious: the hot paths (dot, axpy, gradient accumulation)
// avoid per-call allocation.
package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SparseVector is a sparse vector in coordinate form with strictly increasing
// indices. The zero value is an empty vector.
type SparseVector struct {
	Indices []int
	Values  []float64
}

// NewSparse builds a sparse vector from parallel index/value slices, sorting
// them by index and merging duplicates by addition.
func NewSparse(indices []int, values []float64) (*SparseVector, error) {
	if len(indices) != len(values) {
		return nil, fmt.Errorf("linalg: NewSparse length mismatch: %d indices, %d values", len(indices), len(values))
	}
	type pair struct {
		i int
		v float64
	}
	pairs := make([]pair, len(indices))
	for k := range indices {
		pairs[k] = pair{indices[k], values[k]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	sv := &SparseVector{
		Indices: make([]int, 0, len(pairs)),
		Values:  make([]float64, 0, len(pairs)),
	}
	for _, p := range pairs {
		if n := len(sv.Indices); n > 0 && sv.Indices[n-1] == p.i {
			sv.Values[n-1] += p.v
			continue
		}
		sv.Indices = append(sv.Indices, p.i)
		sv.Values = append(sv.Values, p.v)
	}
	return sv, nil
}

// Nnz returns the number of stored entries.
func (v *SparseVector) Nnz() int { return len(v.Indices) }

// Clone returns a deep copy.
func (v *SparseVector) Clone() *SparseVector {
	return &SparseVector{
		Indices: append([]int(nil), v.Indices...),
		Values:  append([]float64(nil), v.Values...),
	}
}

// DotDense returns <v, w> against a dense vector. Indices beyond len(w) are
// ignored.
func (v *SparseVector) DotDense(w []float64) float64 {
	var s float64
	for k, i := range v.Indices {
		if i < len(w) {
			s += v.Values[k] * w[i]
		}
	}
	return s
}

// AddToDense computes w += alpha * v in place.
func (v *SparseVector) AddToDense(w []float64, alpha float64) {
	for k, i := range v.Indices {
		if i < len(w) {
			w[i] += alpha * v.Values[k]
		}
	}
}

// Norm2 returns the Euclidean norm of the sparse vector.
func (v *SparseVector) Norm2() float64 {
	var s float64
	for _, x := range v.Values {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dense kernels.

// Dot returns the inner product of two equal-length dense vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of a dense vector.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// NnzDense counts nonzero entries of a dense vector.
func NnzDense(x []float64) int {
	n := 0
	for _, v := range x {
		if v != 0 {
			n++
		}
	}
	return n
}

// Fill sets every element of x to c.
func Fill(x []float64, c float64) {
	for i := range x {
		x[i] = c
	}
}

// Sigmoid returns 1/(1+exp(-x)), computed stably for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1.0 / (1.0 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1.0 + e)
}

// LogLoss returns the logistic loss -[y*log(p) + (1-y)*log(1-p)] for label
// y in {0,1} and margin z = w.x, computed from the margin for stability.
func LogLoss(z float64, y float64) float64 {
	// log(1+exp(-z)) if y==1; log(1+exp(z)) if y==0.
	if y > 0.5 {
		return log1pExp(-z)
	}
	return log1pExp(z)
}

func log1pExp(x float64) float64 {
	if x > 35 {
		return x
	}
	return math.Log1p(math.Exp(x))
}
