package linalg

import (
	"math"
	"testing"

	"repro/internal/par"
)

// kernelVec builds a vector with values spread across many magnitudes so any
// change in summation order would actually change the float64 result.
func kernelVec(n int, seed float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)+seed) * math.Pow(10, float64(i%13)-6)
	}
	return x
}

// TestReductionsSerialParallelBitwise pins the determinism contract at the
// linalg layer: forcing the parallel path must not change a single bit of
// Dot, Sum, SumSquares, or Norm2.
func TestReductionsSerialParallelBitwise(t *testing.T) {
	old := par.MinParallel
	defer func() { par.MinParallel = old }()
	for _, n := range []int{1, 3, par.ChunkSize - 1, par.ChunkSize + 1, 5*par.ChunkSize + 7, old + 123} {
		a := kernelVec(n, 0.1)
		b := kernelVec(n, 7.7)

		par.MinParallel = old + n + 1 // force serial
		sDot, sSum, sSq, sN2 := Dot(a, b), Sum(a), SumSquares(a), Norm2(a)
		par.MinParallel = 1 // force parallel
		pDot, pSum, pSq, pN2 := Dot(a, b), Sum(a), SumSquares(a), Norm2(a)

		for _, c := range []struct {
			name string
			s, p float64
		}{{"Dot", sDot, pDot}, {"Sum", sSum, pSum}, {"SumSquares", sSq, pSq}, {"Norm2", sN2, pN2}} {
			if math.Float64bits(c.s) != math.Float64bits(c.p) {
				t.Fatalf("n=%d %s: serial %x != parallel %x", n, c.name, math.Float64bits(c.s), math.Float64bits(c.p))
			}
		}
	}
}

// TestElementwiseSerialParallelEqual: the element-wise kernels are exact per
// element, so serial and parallel runs must agree everywhere.
func TestElementwiseSerialParallelEqual(t *testing.T) {
	old := par.MinParallel
	defer func() { par.MinParallel = old }()
	n := 3*par.ChunkSize + 11
	src := kernelVec(n, 2.2)
	base := kernelVec(n, 4.4)

	type op struct {
		name string
		run  func(dst []float64)
	}
	ops := []op{
		{"Axpy", func(d []float64) { Axpy(0.37, src, d) }},
		{"Scale", func(d []float64) { Scale(-1.25, d) }},
		{"Fill", func(d []float64) { Fill(d, 3.5) }},
		{"Add", func(d []float64) { Add(d, src) }},
		{"Sub", func(d []float64) { Sub(d, src) }},
		{"Mul", func(d []float64) { Mul(d, src) }},
		{"Div", func(d []float64) { Div(d, src) }},
	}
	for _, o := range ops {
		serial := append([]float64(nil), base...)
		par.MinParallel = n + 1
		o.run(serial)
		parallel := append([]float64(nil), base...)
		par.MinParallel = 1
		o.run(parallel)
		par.MinParallel = old
		for i := range serial {
			if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
				t.Fatalf("%s: element %d: serial %v != parallel %v", o.name, i, serial[i], parallel[i])
			}
		}
	}
}

// TestElementwiseSemantics pins down what each kernel computes on a small
// hand-checked input.
func TestElementwiseSemantics(t *testing.T) {
	dst := []float64{1, 2, 3, 4, 5}
	src := []float64{10, 20, 30, 40, 50}

	d := append([]float64(nil), dst...)
	Add(d, src)
	want := []float64{11, 22, 33, 44, 55}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Add[%d] = %v, want %v", i, d[i], want[i])
		}
	}

	d = append([]float64(nil), dst...)
	Sub(d, src)
	want = []float64{-9, -18, -27, -36, -45}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Sub[%d] = %v, want %v", i, d[i], want[i])
		}
	}

	d = append([]float64(nil), dst...)
	Mul(d, src)
	want = []float64{10, 40, 90, 160, 250}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Mul[%d] = %v, want %v", i, d[i], want[i])
		}
	}

	d = []float64{10, 20, 30, 40, 1}
	Div(d, []float64{2, 4, 5, 8, 0})
	want = []float64{5, 5, 6, 5, math.Inf(1)}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Div[%d] = %v, want %v", i, d[i], want[i])
		}
	}

	for _, k := range []func([]float64, []float64){Add, Sub, Mul, Div} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("elementwise kernel did not panic on length mismatch")
				}
			}()
			k(make([]float64, 3), make([]float64, 4))
		}()
	}
}

// TestKernelsZeroAlloc is the zero-alloc contract for the serial hot path:
// at sizes below par.MinParallel the kernels must not allocate at all.
func TestKernelsZeroAlloc(t *testing.T) {
	const n = 4096
	if n >= par.MinParallel {
		t.Fatalf("test size %d not below MinParallel %d", n, par.MinParallel)
	}
	a := kernelVec(n, 1.0)
	b := kernelVec(n, 2.0)
	var sink float64
	checks := []struct {
		name string
		fn   func()
	}{
		{"Dot", func() { sink += Dot(a, b) }},
		{"Axpy", func() { Axpy(0.5, a, b) }},
		{"Scale", func() { Scale(1.0001, b) }},
		{"Sum", func() { sink += Sum(a) }},
		{"Norm2", func() { sink += Norm2(a) }},
		{"Add", func() { Add(b, a) }},
		{"Mul", func() { Mul(b, a) }},
	}
	for _, c := range checks {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
	_ = sink
}

// TestNewSparseFastPath: already-sorted input must round-trip exactly, and
// the fast path must not fire for duplicates or out-of-order indices (those
// still go through sort+merge).
func TestNewSparseFastPath(t *testing.T) {
	idx := []int{2, 5, 9, 40}
	val := []float64{1, 2, 3, 4}
	sv, err := NewSparse(idx, val)
	if err != nil {
		t.Fatal(err)
	}
	for k := range idx {
		if sv.Indices[k] != idx[k] || sv.Values[k] != val[k] {
			t.Fatalf("fast path entry %d = (%d,%v), want (%d,%v)", k, sv.Indices[k], sv.Values[k], idx[k], val[k])
		}
	}
	// The copy must be deep: mutating the input must not alias the vector.
	idx[0] = 99
	val[0] = 99
	if sv.Indices[0] != 2 || sv.Values[0] != 1 {
		t.Fatal("fast path aliased caller slices")
	}

	// Duplicates force the slow path and still merge by addition.
	sv, err = NewSparse([]int{3, 3, 7}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Indices) != 2 || sv.Indices[0] != 3 || sv.Values[0] != 3 || sv.Values[1] != 5 {
		t.Fatalf("duplicate merge broken: %v %v", sv.Indices, sv.Values)
	}
}

// TestNewSparseSortedNoSortAllocs: the fast path performs exactly the two
// result-copy allocations plus the struct itself.
func TestNewSparseSortedNoSortAllocs(t *testing.T) {
	idx := make([]int, 512)
	val := make([]float64, 512)
	for i := range idx {
		idx[i] = i * 3
		val[i] = float64(i)
	}
	allocs := testing.AllocsPerRun(100, func() {
		sv, err := NewSparse(idx, val)
		if err != nil || sv.Nnz() != 512 {
			t.Fatal("NewSparse failed")
		}
	})
	if allocs > 3 {
		t.Errorf("sorted NewSparse: %v allocs/op, want <= 3 (struct + two copies)", allocs)
	}
}

func benchVecPair(n int) ([]float64, []float64) {
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i%97) * 0.013
		b[i] = float64(i%89) * 0.017
	}
	return a, b
}

func BenchmarkHotpathDot(b *testing.B) {
	for _, n := range []int{1024, 65536} {
		a, x := benchVecPair(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			var s float64
			for i := 0; i < b.N; i++ {
				s += Dot(a, x)
			}
			_ = s
		})
	}
}

func BenchmarkHotpathAxpy(b *testing.B) {
	for _, n := range []int{1024, 65536} {
		a, x := benchVecPair(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				Axpy(0.001, a, x)
			}
		})
	}
}

func sizeName(n int) string {
	if n >= 1024 {
		return itoa(n/1024) + "k"
	}
	return itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
