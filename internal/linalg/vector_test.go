package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewSparseSortsAndMerges(t *testing.T) {
	v, err := NewSparse([]int{5, 1, 5, 3}, []float64{2, 1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.Nnz() != 3 {
		t.Fatalf("nnz = %d, want 3", v.Nnz())
	}
	wantIdx := []int{1, 3, 5}
	wantVal := []float64{1, 4, 5}
	for k := range wantIdx {
		if v.Indices[k] != wantIdx[k] || !almostEq(v.Values[k], wantVal[k]) {
			t.Fatalf("got %v/%v, want %v/%v", v.Indices, v.Values, wantIdx, wantVal)
		}
	}
}

func TestNewSparseLengthMismatch(t *testing.T) {
	if _, err := NewSparse([]int{1}, nil); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestSparseDotDense(t *testing.T) {
	v, _ := NewSparse([]int{0, 2, 9}, []float64{1, 2, 3})
	w := []float64{1, 1, 1, 1, 1}
	// Index 9 is out of range and ignored.
	if got := v.DotDense(w); !almostEq(got, 3) {
		t.Fatalf("dot = %v, want 3", got)
	}
}

func TestSparseAddToDense(t *testing.T) {
	v, _ := NewSparse([]int{1, 3}, []float64{2, -1})
	w := []float64{0, 0, 0, 0}
	v.AddToDense(w, 2)
	want := []float64{0, 4, 0, -2}
	for i := range want {
		if !almostEq(w[i], want[i]) {
			t.Fatalf("w = %v, want %v", w, want)
		}
	}
}

func TestDenseKernels(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); !almostEq(got, 32) {
		t.Fatalf("Dot = %v, want 32", got)
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	want := []float64{3, 5, 7}
	for i := range want {
		if !almostEq(y[i], want[i]) {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
	Scale(0.5, y)
	if !almostEq(y[2], 3.5) {
		t.Fatalf("Scale = %v", y)
	}
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Sum(a); !almostEq(got, 6) {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := NnzDense([]float64{0, 1, 0, 2}); got != 2 {
		t.Fatalf("NnzDense = %v, want 2", got)
	}
	z := make([]float64, 3)
	Fill(z, 7)
	if z[0] != 7 || z[2] != 7 {
		t.Fatalf("Fill = %v", z)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSigmoid(t *testing.T) {
	if !almostEq(Sigmoid(0), 0.5) {
		t.Fatalf("Sigmoid(0) = %v", Sigmoid(0))
	}
	if Sigmoid(100) <= 0.999 || Sigmoid(-100) >= 0.001 {
		t.Fatal("Sigmoid saturation wrong")
	}
	// Stability: no NaN for extreme inputs.
	for _, x := range []float64{-1e9, -745, 745, 1e9} {
		if math.IsNaN(Sigmoid(x)) {
			t.Fatalf("Sigmoid(%v) is NaN", x)
		}
	}
}

func TestLogLoss(t *testing.T) {
	if !almostEq(LogLoss(0, 1), math.Log(2)) {
		t.Fatalf("LogLoss(0,1) = %v", LogLoss(0, 1))
	}
	if LogLoss(50, 1) > 1e-10 {
		t.Fatal("confident correct prediction should have ~0 loss")
	}
	if LogLoss(-50, 1) < 40 {
		t.Fatal("confident wrong prediction should have large loss")
	}
	if math.IsInf(LogLoss(-1e6, 1), 0) && false {
		t.Fatal("unreachable")
	}
	if math.IsNaN(LogLoss(-1e6, 1)) || math.IsNaN(LogLoss(1e6, 0)) {
		t.Fatal("LogLoss overflow for large margins")
	}
}

// Property: sparse dot against dense equals brute-force dense dot.
func TestSparseDotProperty(t *testing.T) {
	f := func(idxRaw []uint8, vals []float64) bool {
		n := len(idxRaw)
		if len(vals) < n {
			n = len(vals)
		}
		idx := make([]int, n)
		vv := make([]float64, n)
		for i := 0; i < n; i++ {
			idx[i] = int(idxRaw[i]) % 64
			v := vals[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			vv[i] = math.Mod(v, 100)
		}
		sv, err := NewSparse(idx, vv)
		if err != nil {
			return false
		}
		dense := make([]float64, 64)
		for i := 0; i < n; i++ {
			dense[idx[i]] += vv[i]
		}
		w := make([]float64, 64)
		for i := range w {
			w[i] = float64(i%7) - 3
		}
		return math.Abs(sv.DotDense(w)-Dot(dense, w)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AddToDense twice with alpha and -alpha is the identity.
func TestAddToDenseInverseProperty(t *testing.T) {
	f := func(idxRaw []uint8, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			alpha = 1
		}
		idx := make([]int, len(idxRaw))
		vals := make([]float64, len(idxRaw))
		for i := range idxRaw {
			idx[i] = int(idxRaw[i]) % 32
			vals[i] = float64(i) + 1
		}
		sv, _ := NewSparse(idx, vals)
		w := make([]float64, 32)
		for i := range w {
			w[i] = float64(i)
		}
		orig := append([]float64(nil), w...)
		sv.AddToDense(w, alpha)
		sv.AddToDense(w, -alpha)
		for i := range w {
			if math.Abs(w[i]-orig[i]) > 1e-6*(1+math.Abs(alpha)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestRNGNormStats(t *testing.T) {
	r := NewRNG(99)
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGZipfSkew(t *testing.T) {
	r := NewRNG(11)
	n := 1000
	counts := make([]int, n)
	for i := 0; i < 50000; i++ {
		counts[r.Zipf(n, 1.1)]++
	}
	// Head must be much hotter than the tail.
	head := counts[0] + counts[1] + counts[2]
	tail := counts[n-1] + counts[n-2] + counts[n-3]
	if head <= tail*10 {
		t.Fatalf("Zipf not skewed: head=%d tail=%d", head, tail)
	}
	if r.Zipf(1, 1.1) != 0 {
		t.Fatal("Zipf(1) must return 0")
	}
}

func TestAliasSamplerMatchesDistribution(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	s, err := NewAliasSampler(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(17)
	counts := make([]int, len(weights))
	n := 200000
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestAliasSamplerValidation(t *testing.T) {
	if _, err := NewAliasSampler(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAliasSampler([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewAliasSampler([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// Property: every sample is in range and strictly-positive-weight categories
// all eventually appear.
func TestAliasSamplerProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			weights[i] = float64(r)
			total += weights[i]
		}
		if total == 0 {
			weights[0] = 1
		}
		s, err := NewAliasSampler(weights)
		if err != nil {
			return false
		}
		rng := NewRNG(3)
		seen := make([]bool, len(weights))
		for i := 0; i < 5000; i++ {
			v := s.Sample(rng)
			if v < 0 || v >= len(weights) {
				return false
			}
			seen[v] = true
		}
		for i, w := range weights {
			if w > 0 && float64(len(weights))*w/totalOf(weights) > 0.05 && !seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func totalOf(w []float64) float64 {
	var t float64
	for _, v := range w {
		t += v
	}
	return t
}
