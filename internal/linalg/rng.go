package linalg

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xorshift128+). Every stochastic component of the
// reproduction draws from an explicitly seeded RNG so simulations are
// bit-identical across runs; math/rand's global state is never used.
type RNG struct {
	s0, s1 uint64
}

// NewRNG creates a generator from a seed. Distinct seeds give independent
// streams for practical purposes.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to expand the seed into two nonzero words.
	z := seed
	next := func() uint64 {
		z += 0x9e3779b97f4a7c15
		x := z
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("linalg: RNG.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf returns an integer in [0, n) drawn from an approximate Zipf
// distribution with exponent s, used to generate skewed feature indices:
// real CTR/recommendation datasets have a few very hot dimensions and a long
// tail, which is exactly what makes sparse pull effective.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF approximation for the continuous analogue.
	u := r.Float64()
	if s == 1 {
		return int(math.Min(float64(n)-1, math.Exp(u*math.Log(float64(n)))-1))
	}
	x := math.Pow(u*(math.Pow(float64(n), 1-s)-1)+1, 1/(1-s)) - 1
	i := int(x)
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
