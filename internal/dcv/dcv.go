// Package dcv implements the paper's core abstraction: the Dimension
// Co-located Vector. A DCV is a vector distributed over parameter servers by
// column. DCVs allocated with Dense get a raw matrix with k pre-allocated
// rows; Derive hands out the matrix's free rows, so derived vectors share one
// column partitioner and every dimension of every derived vector lives on the
// same server as that dimension of the original. That co-location is what
// lets element-wise operators (dot, add, mul, axpy, zip) run entirely
// server-side, with only scalars on the wire.
//
// The operator set mirrors the paper's Table 1:
//
//	Row access:    Pull, Push(Add), Sum, Nnz, Norm2
//	Column access: Axpy, Dot, Copy, Sub, Add, Mul, Div (and ZipMap/ZipReduce)
//	Creation:      Derive, Dense, Sparse
package dcv

import (
	"errors"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/ps"
	"repro/internal/simnet"
)

// DefaultCapacity is the number of rows pre-allocated in a raw matrix when
// Dense is called without an explicit capacity — the paper's "initial size of
// the matrix (i.e., the k) is usually small, for example ten".
const DefaultCapacity = 10

// ErrNoFreeRows is returned by Derive when the raw matrix's pre-allocated
// rows are exhausted; allocate the original with a larger capacity.
var ErrNoFreeRows = errors.New("dcv: no free rows left in the raw matrix; create the original with a larger capacity")

// ErrNotColocated is returned by operators that require their operands to
// share a raw matrix (created via Derive) when they do not.
var ErrNotColocated = errors.New("dcv: vectors are not dimension co-located; create one with Derive from the other")

// ErrPartitionMismatch is returned by column operators whose operand lives in
// a matrix with an incompatible partitioning (different server count, hence
// different shard ranges): the shuffle path would align slices of different
// widths. Operands must share the target's column layout even when they are
// not co-located.
var ErrPartitionMismatch = errors.New("dcv: operand partitioning incompatible with target")

// Session binds DCV bookkeeping to one parameter-server application: it
// tracks how many rows of each raw matrix are in use so Derive can hand out
// free rows.
type Session struct {
	Master *ps.Master
	used   map[*ps.Matrix]int
}

// NewSession creates a DCV session over a PS master.
func NewSession(m *ps.Master) *Session {
	return &Session{Master: m, used: map[*ps.Matrix]int{}}
}

// Vector is one DCV: a row of a column-partitioned raw matrix.
type Vector struct {
	sess   *Session
	mat    *ps.Matrix
	row    int
	sparse bool
}

// Dim returns the vector's dimension.
func (v *Vector) Dim() int { return v.mat.Dim }

// Matrix exposes the raw matrix for tests and low-level extensions.
func (v *Vector) Matrix() *ps.Matrix { return v.mat }

// Row returns the vector's row index inside its raw matrix.
func (v *Vector) Row() int { return v.row }

// Colocated reports whether v and other live in the same raw matrix and so
// share a partitioner and physical placement.
func (v *Vector) Colocated(other *Vector) bool { return v.mat == other.mat }

// Dense allocates a new dense DCV of the given dimension, with capacity
// pre-allocated rows in the raw matrix (DefaultCapacity when omitted).
// Corresponds to the paper's DCV.dense(dim, k).
func (s *Session) Dense(p *simnet.Proc, dim int, capacity ...int) (*Vector, error) {
	k := DefaultCapacity
	if len(capacity) > 0 {
		k = capacity[0]
	}
	if k < 1 {
		return nil, fmt.Errorf("dcv: capacity must be at least 1, got %d", k)
	}
	mat, err := s.Master.CreateMatrix(p, k, dim)
	if err != nil {
		return nil, err
	}
	s.used[mat] = 1
	return &Vector{sess: s, mat: mat, row: 0}, nil
}

// Sparse allocates a DCV whose row-pull traffic is charged by the number of
// nonzero entries instead of the dimension, modelling a sparse server-side
// representation. Corresponds to the paper's DCV.sparse.
func (s *Session) Sparse(p *simnet.Proc, dim int, capacity ...int) (*Vector, error) {
	v, err := s.Dense(p, dim, capacity...)
	if err != nil {
		return nil, err
	}
	v.sparse = true
	return v, nil
}

// Derive returns a fresh DCV co-located with v: the next free row of v's raw
// matrix. It is a pure metadata operation — no server communication — which
// is exactly why deriving is the "correct writing" in the paper's Figure 4.
func (v *Vector) Derive() (*Vector, error) {
	next := v.sess.used[v.mat]
	if next >= v.mat.Rows {
		return nil, ErrNoFreeRows
	}
	v.sess.used[v.mat] = next + 1
	return &Vector{sess: v.sess, mat: v.mat, row: next, sparse: v.sparse}, nil
}

// MustDerive is Derive for initialization paths where exhaustion is a
// programming error.
func (v *Vector) MustDerive() *Vector {
	d, err := v.Derive()
	if err != nil {
		panic(err)
	}
	return d
}

// --- Row access operators (worker <-> server data movement) ---
//
// Each operator comes in two forms, following the repo-wide convention
// documented in ARCHITECTURE.md: TryX returns a typed error when a shard's
// server stays unreachable (wrapping ps.ErrServerDown) or the calling machine
// is down (wrapping simnet.ErrNodeDown); the plain form delegates to TryX and
// panics on those errors, for reliable runs and tests. Argument errors (bad
// index slice, wrong dimension) panic in both forms.

// TryPull fetches the whole vector to the caller's machine. For sparse DCVs
// the transfer is charged by stored nonzeros.
func (v *Vector) TryPull(p *simnet.Proc, from *simnet.Node) ([]float64, error) {
	if v.sparse {
		return v.mat.TryPullRowCompressed(p, from, v.row)
	}
	return v.mat.TryPullRow(p, from, v.row)
}

// Pull is TryPull panicking on availability errors.
func (v *Vector) Pull(p *simnet.Proc, from *simnet.Node) []float64 {
	row, err := v.TryPull(p, from)
	if err != nil {
		panic(err)
	}
	return row
}

// TryPullIndices fetches only the given strictly-increasing dimensions — the
// sparse pull used when a mini-batch touches a small feature subset.
func (v *Vector) TryPullIndices(p *simnet.Proc, from *simnet.Node, indices []int) ([]float64, error) {
	return v.mat.TryPullRowIndices(p, from, v.row, indices)
}

// PullIndices is TryPullIndices panicking on availability errors.
func (v *Vector) PullIndices(p *simnet.Proc, from *simnet.Node, indices []int) []float64 {
	vals, err := v.TryPullIndices(p, from, indices)
	if err != nil {
		panic(err)
	}
	return vals
}

// PinSnapshot pins a snapshot-consistent view of the vector's raw matrix at
// the current model clock (ps.ModelSnapshot): subsequent TryPullIndicesAt
// reads return exactly the values live at the pin, bit-identical under
// concurrent pushes, at no bulk-copy cost. Close the snapshot when done.
func (v *Vector) PinSnapshot(p *simnet.Proc) (*ps.ModelSnapshot, error) {
	return v.mat.PinSnapshot(p)
}

// TryPullIndicesAt is TryPullIndices read against a pinned snapshot instead
// of the live model. The snapshot must pin this vector's raw matrix; reads
// of a pin that was fenced (recovery, migration, undeclared bulk write)
// return an error wrapping ps.ErrSnapshotInvalid, never torn values.
func (v *Vector) TryPullIndicesAt(p *simnet.Proc, from *simnet.Node, snap *ps.ModelSnapshot, indices []int) ([]float64, error) {
	if snap == nil {
		return v.TryPullIndices(p, from, indices)
	}
	if snap.Matrix() != v.mat {
		return nil, fmt.Errorf("dcv: snapshot pins matrix %d, vector lives in %d", snap.Matrix().ID, v.mat.ID)
	}
	return snap.TryReadRowIndices(p, from, v.row, indices)
}

// TryAdd pushes a sparse delta into the vector (the DCV add used as the
// gradient push in the paper's Figure 3).
func (v *Vector) TryAdd(p *simnet.Proc, from *simnet.Node, delta *linalg.SparseVector) error {
	return v.mat.TryPushAdd(p, from, v.row, delta)
}

// Add is TryAdd panicking on availability errors.
func (v *Vector) Add(p *simnet.Proc, from *simnet.Node, delta *linalg.SparseVector) {
	if err := v.TryAdd(p, from, delta); err != nil {
		panic(err)
	}
}

// TryAddDense pushes a dense delta into the vector.
func (v *Vector) TryAddDense(p *simnet.Proc, from *simnet.Node, delta []float64) error {
	return v.mat.TryPushAddDense(p, from, v.row, delta)
}

// AddDense is TryAddDense panicking on availability errors.
func (v *Vector) AddDense(p *simnet.Proc, from *simnet.Node, delta []float64) {
	if err := v.TryAddDense(p, from, delta); err != nil {
		panic(err)
	}
}

// TrySet overwrites the vector with the given values.
func (v *Vector) TrySet(p *simnet.Proc, from *simnet.Node, values []float64) error {
	return v.mat.TrySetRow(p, from, v.row, values)
}

// Set is TrySet panicking on availability errors.
func (v *Vector) Set(p *simnet.Proc, from *simnet.Node, values []float64) {
	if err := v.TrySet(p, from, values); err != nil {
		panic(err)
	}
}

// TryPush overwrites the vector (paper terminology for writing a row).
func (v *Vector) TryPush(p *simnet.Proc, from *simnet.Node, values []float64) error {
	return v.TrySet(p, from, values)
}

// Push is TryPush panicking on availability errors.
func (v *Vector) Push(p *simnet.Proc, from *simnet.Node, values []float64) {
	v.Set(p, from, values)
}

// TrySum returns the sum of all elements, computed server-side.
func (v *Vector) TrySum(p *simnet.Proc, from *simnet.Node) (float64, error) {
	return v.mat.TryRowSum(p, from, v.row)
}

// Sum is TrySum panicking on availability errors.
func (v *Vector) Sum(p *simnet.Proc, from *simnet.Node) float64 {
	s, err := v.TrySum(p, from)
	if err != nil {
		panic(err)
	}
	return s
}

// TryNnz returns the number of nonzero elements, computed server-side.
func (v *Vector) TryNnz(p *simnet.Proc, from *simnet.Node) (int, error) {
	return v.mat.TryRowNnz(p, from, v.row)
}

// Nnz is TryNnz panicking on availability errors.
func (v *Vector) Nnz(p *simnet.Proc, from *simnet.Node) int {
	n, err := v.TryNnz(p, from)
	if err != nil {
		panic(err)
	}
	return n
}

// TryNorm2 returns the Euclidean norm, computed server-side.
func (v *Vector) TryNorm2(p *simnet.Proc, from *simnet.Node) (float64, error) {
	return v.mat.TryRowNorm2(p, from, v.row)
}

// Norm2 is TryNorm2 panicking on availability errors.
func (v *Vector) Norm2(p *simnet.Proc, from *simnet.Node) float64 {
	n, err := v.TryNorm2(p, from)
	if err != nil {
		panic(err)
	}
	return n
}
