package dcv

// This file implements the operator-fusion layer: a Batch records a program
// of column ops against co-located vectors and executes the whole program as
// ONE request per server (ps.TryInvokeFused) instead of one fan-out per
// operator. Cost accounting: the fused request pays the per-RPC framing
// (RequestOverheadB) once each way plus OpCommandBytes per recorded op and
// the ops' summed result bytes and server work — so fusing k ops saves
// (k-1) request/response overheads and (k-1) round trips per server while
// charging exactly the same per-element compute as the unfused operators.
//
// Because the program rides one ps.CallShard per server, it inherits the
// retry/dedup machinery atomically: a batch containing any mutation carries
// one request ID per server call, and a retried batch re-executes exactly
// once per server incarnation. Reduction results are assigned into per-(op,
// server) slots, never accumulated, so re-execution after a server recovery
// stays idempotent.
//
// All vectors in a batch must share one raw matrix (the co-location Derive
// guarantees): the fused program runs on each server against local shard
// memory only, with no operand shuffle. A non-co-located operand is recorded
// as an error and surfaced by Run.

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/simnet"
)

// OpCommandBytes is the wire size of one fused op's command descriptor
// (opcode, row ids, scalar arguments). Unfused operators pay a full
// RequestOverheadB per op per server; fused ops share one and pay only this.
const OpCommandBytes = 24

// Scalar is the deferred result of a reducing batch op (Dot, Sum, Norm2,
// Nnz). It becomes readable after the batch's Run returns nil.
type Scalar struct {
	ready    bool
	value    float64
	finalize func(partials []float64) float64
}

// Value returns the reduction result. It panics if the owning batch has not
// successfully run.
func (sc *Scalar) Value() float64 {
	if !sc.ready {
		panic("dcv: Scalar read before its batch ran successfully")
	}
	return sc.value
}

// fusedOp is one recorded operation.
type fusedOp struct {
	reqBytes  float64
	respBytes float64
	// workPerElem already includes the vector-count factor, matching
	// zipInvoke's charge of workPerElem × width × (1+operands).
	workPerElem float64
	mutates     bool
	// rows lists the matrix rows a mutating op writes, forwarded as the
	// fused request's dirty-row declaration (ps.InvokeOp.DirtyRows), which
	// both scopes version stamping and keeps the consistency layer's
	// per-row drift watermarks exact (ps/versions.go).
	rows   []int
	scalar *Scalar
	run    func(s int, sh *ps.Shard) float64
}

// Batch records a program of column ops against one raw matrix and executes
// it with one request per server. Recording is free (no communication);
// validation errors are remembered and returned by Run. A batch is single
// use: Run executes it at most once.
type Batch struct {
	sess *Session
	mat  *ps.Matrix
	ops  []fusedOp
	err  error
	ran  bool
}

// NewBatch starts an empty batch anchored at anchor's raw matrix; every
// vector subsequently recorded must be co-located with it.
func NewBatch(anchor *Vector) *Batch {
	return &Batch{sess: anchor.sess, mat: anchor.mat}
}

// Len returns the number of ops recorded so far.
func (b *Batch) Len() int { return len(b.ops) }

// check validates that every vector is co-located with the batch's matrix,
// recording the first violation as the batch error.
func (b *Batch) check(op string, vs ...*Vector) bool {
	if b.err != nil {
		return false
	}
	for i, v := range vs {
		if v == nil {
			b.err = fmt.Errorf("dcv: batch %s: vector %d is nil", op, i)
			return false
		}
		if v.mat != b.mat {
			b.err = fmt.Errorf("dcv: batch %s: %w", op, ErrNotColocated)
			return false
		}
	}
	return true
}

// cost returns the per-element flop charge of the calibrated cost model.
func (b *Batch) cost() float64 { return b.sess.Master.Cl.Cost.FlopsPerElem }

// Fill records "set every element of v to c".
func (b *Batch) Fill(v *Vector, c float64) *Batch {
	if !b.check("fill", v) {
		return b
	}
	row := v.row
	b.ops = append(b.ops, fusedOp{
		reqBytes: OpCommandBytes, workPerElem: b.cost(), mutates: true, rows: []int{row},
		run: func(_ int, sh *ps.Shard) float64 {
			linalg.Fill(sh.Rows[row], c)
			return 0
		},
	})
	return b
}

// Zero records "reset v to zero".
func (b *Batch) Zero(v *Vector) *Batch { return b.Fill(v, 0) }

// Scale records "v *= alpha".
func (b *Batch) Scale(v *Vector, alpha float64) *Batch {
	if !b.check("scale", v) {
		return b
	}
	row := v.row
	b.ops = append(b.ops, fusedOp{
		reqBytes: OpCommandBytes, workPerElem: b.cost(), mutates: true, rows: []int{row},
		run: func(_ int, sh *ps.Shard) float64 {
			linalg.Scale(alpha, sh.Rows[row])
			return 0
		},
	})
	return b
}

// Axpy records "v += alpha * other".
func (b *Batch) Axpy(v *Vector, alpha float64, other *Vector) *Batch {
	if !b.check("axpy", v, other) {
		return b
	}
	tr, or := v.row, other.row
	b.ops = append(b.ops, fusedOp{
		reqBytes: OpCommandBytes, workPerElem: 2 * b.cost(), mutates: true, rows: []int{tr},
		run: func(_ int, sh *ps.Shard) float64 {
			linalg.Axpy(alpha, sh.Rows[or], sh.Rows[tr])
			return 0
		},
	})
	return b
}

// elementwise records "v = kernel(v, other)" element-wise, where kernel
// applies an in-place vectorized update dst = dst op src (see linalg's
// unrolled kernels, which also fan wide shards over the worker pool).
func (b *Batch) elementwise(name string, v, other *Vector, kernel func(dst, src []float64)) *Batch {
	if !b.check(name, v, other) {
		return b
	}
	tr, or := v.row, other.row
	b.ops = append(b.ops, fusedOp{
		reqBytes: OpCommandBytes, workPerElem: 2 * b.cost(), mutates: true, rows: []int{tr},
		run: func(_ int, sh *ps.Shard) float64 {
			kernel(sh.Rows[tr], sh.Rows[or])
			return 0
		},
	})
	return b
}

// AddVec records "v += other".
func (b *Batch) AddVec(v, other *Vector) *Batch {
	return b.elementwise("add", v, other, linalg.Add)
}

// SubVec records "v -= other".
func (b *Batch) SubVec(v, other *Vector) *Batch {
	return b.elementwise("sub", v, other, linalg.Sub)
}

// MulVec records "v *= other".
func (b *Batch) MulVec(v, other *Vector) *Batch {
	return b.elementwise("mul", v, other, linalg.Mul)
}

// DivVec records "v /= other".
func (b *Batch) DivVec(v, other *Vector) *Batch {
	return b.elementwise("div", v, other, linalg.Div)
}

// CopyFrom records "v = other".
func (b *Batch) CopyFrom(v, other *Vector) *Batch {
	return b.elementwise("copy", v, other, func(dst, src []float64) { copy(dst, src) })
}

// ZipMap records the general server-side zip: fn runs on every shard with the
// target's and operands' aligned live slices, exactly like Vector.ZipMap but
// sharing the batch's single request. workPerElem is the caller's estimate of
// compute per element per vector.
func (b *Batch) ZipMap(v *Vector, workPerElem float64, fn func(lo int, rows [][]float64), others ...*Vector) *Batch {
	if !b.check("zipmap", append([]*Vector{v}, others...)...) {
		return b
	}
	rowIdx := make([]int, 1+len(others))
	rowIdx[0] = v.row
	for i, ov := range others {
		rowIdx[1+i] = ov.row
	}
	b.ops = append(b.ops, fusedOp{
		reqBytes:    OpCommandBytes,
		workPerElem: workPerElem * float64(len(rowIdx)),
		mutates:     true,
		rows:        rowIdx, // fn may mutate any zipped slice
		run: func(_ int, sh *ps.Shard) float64 {
			rows := make([][]float64, len(rowIdx))
			for i, r := range rowIdx {
				rows[i] = sh.Rows[r]
			}
			fn(sh.View().Lo, rows)
			return 0
		},
	})
	return b
}

// reduce records a read-only reduction returning one partial per server.
func (b *Batch) reduce(name string, vs []*Vector, workPerElem float64,
	partial func(sh *ps.Shard) float64, finalize func([]float64) float64) *Scalar {
	sc := &Scalar{finalize: finalize}
	if !b.check(name, vs...) {
		return sc
	}
	b.ops = append(b.ops, fusedOp{
		reqBytes: OpCommandBytes, respBytes: 8, workPerElem: workPerElem,
		scalar: sc,
		run: func(_ int, sh *ps.Shard) float64 {
			return partial(sh)
		},
	})
	return sc
}

func sumPartials(parts []float64) float64 {
	var total float64
	for _, x := range parts {
		total += x
	}
	return total
}

// Dot records "<v, other>", readable from the returned Scalar after Run.
func (b *Batch) Dot(v, other *Vector) *Scalar {
	tr, or := 0, 0
	if v != nil && other != nil {
		tr, or = v.row, other.row
	}
	return b.reduce("dot", []*Vector{v, other}, 2*b.cost(),
		func(sh *ps.Shard) float64 {
			return linalg.Dot(sh.Rows[tr], sh.Rows[or])
		}, sumPartials)
}

// Sum records the element sum of v.
func (b *Batch) Sum(v *Vector) *Scalar {
	row := 0
	if v != nil {
		row = v.row
	}
	return b.reduce("sum", []*Vector{v}, b.cost(),
		func(sh *ps.Shard) float64 { return linalg.Sum(sh.Rows[row]) }, sumPartials)
}

// Norm2 records the Euclidean norm of v.
func (b *Batch) Norm2(v *Vector) *Scalar {
	row := 0
	if v != nil {
		row = v.row
	}
	return b.reduce("norm2", []*Vector{v}, b.cost(),
		func(sh *ps.Shard) float64 {
			return linalg.SumSquares(sh.Rows[row])
		}, func(parts []float64) float64 { return math.Sqrt(sumPartials(parts)) })
}

// Run executes the recorded program with one request per server and resolves
// every reduction Scalar. It returns the first recording error (nil-vector,
// co-location violation), an execution error wrapping ps.ErrServerDown or
// simnet.ErrNodeDown when a shard stays unreachable, or nil on success. A
// batch runs at most once.
func (b *Batch) Run(p *simnet.Proc, from *simnet.Node) error {
	if b.err != nil {
		return b.err
	}
	if b.ran {
		return errors.New("dcv: batch already ran; record a fresh one")
	}
	b.ran = true
	if len(b.ops) == 0 {
		return nil
	}
	if t := b.sess.Master.Cl.Sim.Tracer(); t != nil {
		sp := t.Begin(from.ID, from.Name, obs.KBatch, "batch",
			p.TraceParent(), obs.KV{K: "ops", V: strconv.Itoa(len(b.ops))})
		prev := p.SetTraceParent(sp)
		defer func() {
			p.SetTraceParent(prev)
			sp.End()
		}()
	}
	ops := make([]ps.InvokeOp, len(b.ops))
	for i := range b.ops {
		op := b.ops[i]
		ops[i] = ps.InvokeOp{
			ReqBytes:  op.reqBytes,
			RespBytes: op.respBytes,
			Work:      func(w int) float64 { return op.workPerElem * float64(w) },
			Mutates:   op.mutates,
			DirtyRows: op.rows,
			Fn:        op.run,
		}
	}
	partials, err := b.mat.TryInvokeFused(p, from, ops)
	if err != nil {
		return err
	}
	for i, op := range b.ops {
		if op.scalar != nil {
			op.scalar.value = op.scalar.finalize(partials[i])
			op.scalar.ready = true
		}
	}
	return nil
}
