package dcv

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/ps"
	"repro/internal/simnet"
)

// This file implements the column-access operator set. Every operator visits
// each logical shard of the target vector in parallel; when the operands are
// co-located (same raw matrix) each server computes over its local rows and
// only scalars travel. When operands are NOT co-located the same dimension
// range of each operand lives on a different physical server, so a
// server-to-server shuffle ships the operand's range before the computation —
// the cost the paper's Figure 4 warns about and that the derive operator
// exists to avoid.

// ShardSpan describes one server's slice of a zip computation: the owned
// dimensions and, for each operand vector, the aligned value slice. Under
// the default contiguous placement the dimensions are the range [Lo, Hi) and
// Cols is nil; under a non-contiguous placement Cols lists the absolute
// dimensions in local storage order and Lo/Hi are 0 (consumers that need the
// absolute index of position i use At). Rows[0] is the target vector's slice
// and is always live server memory; Rows[i>0] are live memory for co-located
// operands and fetched copies for shuffled ones.
type ShardSpan struct {
	Shard  int
	Lo, Hi int
	Cols   []int
	Rows   [][]float64
}

// Width returns the number of dimensions in the span.
func (sp ShardSpan) Width() int {
	if sp.Cols != nil {
		return len(sp.Cols)
	}
	return sp.Hi - sp.Lo
}

// Contiguous reports whether the span covers a dense dimension range.
func (sp ShardSpan) Contiguous() bool { return sp.Cols == nil }

// At returns the absolute dimension stored at local position i.
func (sp ShardSpan) At(i int) int {
	if sp.Cols != nil {
		return sp.Cols[i]
	}
	return sp.Lo + i
}

// zipInvoke runs fn on every logical shard of v with aligned operand slices,
// charging request/response traffic, per-element server work, and — for
// non-co-located operands — the server-to-server shuffle of their ranges.
// Each shard's invocation rides the PS retry layer (ps.CallShard), so a
// column op that races a server crash blocks until recovery and re-executes
// against the restored shard; only exhausted retries surface as an error.
func (v *Vector) zipInvoke(p *simnet.Proc, from *simnet.Node, others []*Vector,
	respBytes, workPerElem float64, fn func(span ShardSpan)) error {
	for i, ov := range others {
		if ov == nil {
			return fmt.Errorf("dcv: operand %d is nil", i)
		}
		if ov.mat.Dim != v.mat.Dim {
			return fmt.Errorf("dcv: dimension mismatch: %d vs %d", v.mat.Dim, ov.mat.Dim)
		}
		// The shuffle path pairs logical shard s of the operand with logical
		// shard s of the target, so the placements must carve the dimension
		// identically — otherwise the slices are misaligned (or out of range).
		if ov.mat != v.mat && !ps.SamePlacement(ov.mat.Part, v.mat.Part) {
			return fmt.Errorf("dcv: operand %d placement %q differs from target placement %q: %w",
				i, ov.mat.Part.Fingerprint(), v.mat.Part.Fingerprint(), ErrPartitionMismatch)
		}
	}
	// Register with the matrix's route gate so an elastic migration cutover
	// cannot swap the placement while shard fan-out is in flight.
	v.mat.BeginOp(p)
	defer v.mat.EndOp()
	cost := v.sess.Master.Cl.Cost
	errs := make([]error, v.mat.Part.NumServers())
	g := p.Sim().NewGroup()
	// fn may mutate the target row and any co-located operand row (ZipMap's
	// contract); shuffled operands are fetched copies, never live memory.
	touched := []int{v.row}
	for _, ov := range others {
		if ov.mat == v.mat {
			touched = append(touched, ov.row)
		}
	}
	for s := 0; s < v.mat.Part.NumServers(); s++ {
		s := s
		g.Go("zip", func(cp *simnet.Proc) {
			// Allocated once per shard and reused across the retry loop: the
			// rows table and the scratch copies of shuffled operand slices
			// used to be reallocated on every CallShard attempt.
			rows := make([][]float64, 1+len(others))
			var shuffled [][]float64
			if len(others) > 0 {
				shuffled = make([][]float64, len(others))
			}
			errs[s] = v.mat.CallShard(cp, from, ps.CallSpec{
				Shard:     s,
				ReqBytes:  cost.RequestOverheadB,
				RespBytes: cost.RequestOverheadB + respBytes,
				Mutates:   true,
				Touched:   touched,
				Fn: func(fp *simnet.Proc, sh *ps.Shard) error {
					host := v.mat.ServerNode(s)
					width := sh.Width()
					rows[0] = sh.Rows[v.row]
					for i, ov := range others {
						if ov.mat == v.mat {
							rows[1+i] = sh.Rows[ov.row]
							continue
						}
						// Shuffle: same logical range, different physical
						// server (or at least a different matrix whose
						// placement is not guaranteed). Ship the operand's
						// slice across; a dead peer makes the whole
						// invocation retry.
						osh, err := ov.mat.TryShard(s)
						if err != nil {
							return err
						}
						if err := ov.mat.ServerNode(s).TrySend(fp, host, cost.DenseBytes(width)); err != nil {
							return err
						}
						shuffled[i] = append(shuffled[i][:0], osh.Rows[ov.row]...)
						rows[1+i] = shuffled[i]
					}
					host.Compute(fp, workPerElem*float64(width)*float64(1+len(others)))
					view := sh.View()
					fn(ShardSpan{Shard: s, Lo: view.Lo, Hi: view.Hi, Cols: view.Cols, Rows: rows})
					return nil
				},
			})
		})
	}
	g.Wait(p)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TryDot returns <v, other>, computed server-side: each server multiplies its
// local stretches and returns one partial scalar. With a derived (co-located)
// operand no vector data crosses the network; otherwise the operand's ranges
// are shuffled between servers first.
func (v *Vector) TryDot(p *simnet.Proc, from *simnet.Node, other *Vector) (float64, error) {
	cost := v.sess.Master.Cl.Cost
	// One slot per shard (not `total += partial`): a retried invocation
	// re-executes fn, and assignment is idempotent where accumulation is not.
	partials := make([]float64, v.mat.Part.NumServers())
	err := v.zipInvoke(p, from, []*Vector{other}, 8, cost.FlopsPerElem, func(sp ShardSpan) {
		// linalg.Dot: unrolled, chunk-ordered, shard-parallel on wide spans —
		// same bits regardless of whether the pool kicks in.
		partials[sp.Shard] = linalg.Dot(sp.Rows[0], sp.Rows[1])
	})
	var total float64
	for _, x := range partials {
		total += x
	}
	return total, err
}

// Dot is TryDot panicking on operand or availability errors.
func (v *Vector) Dot(p *simnet.Proc, from *simnet.Node, other *Vector) float64 {
	d, err := v.TryDot(p, from, other)
	if err != nil {
		panic(err)
	}
	return d
}

// TryAxpy computes v += alpha*other server-side (the paper's iaxpy used in
// the DeepWalk update, Figure 6).
func (v *Vector) TryAxpy(p *simnet.Proc, from *simnet.Node, alpha float64, other *Vector) error {
	cost := v.sess.Master.Cl.Cost
	return v.zipInvoke(p, from, []*Vector{other}, 0, cost.FlopsPerElem, func(sp ShardSpan) {
		linalg.Axpy(alpha, sp.Rows[1], sp.Rows[0])
	})
}

// Axpy is TryAxpy panicking on operand or availability errors.
func (v *Vector) Axpy(p *simnet.Proc, from *simnet.Node, alpha float64, other *Vector) {
	if err := v.TryAxpy(p, from, alpha, other); err != nil {
		panic(err)
	}
}

// TryAddVec computes v += other element-wise, server-side.
func (v *Vector) TryAddVec(p *simnet.Proc, from *simnet.Node, other *Vector) error {
	return v.elementwise(p, from, other, linalg.Add)
}

// AddVec is TryAddVec panicking on operand or availability errors.
func (v *Vector) AddVec(p *simnet.Proc, from *simnet.Node, other *Vector) {
	if err := v.TryAddVec(p, from, other); err != nil {
		panic(err)
	}
}

// TrySubVec computes v -= other element-wise, server-side.
func (v *Vector) TrySubVec(p *simnet.Proc, from *simnet.Node, other *Vector) error {
	return v.elementwise(p, from, other, linalg.Sub)
}

// SubVec is TrySubVec panicking on operand or availability errors.
func (v *Vector) SubVec(p *simnet.Proc, from *simnet.Node, other *Vector) {
	if err := v.TrySubVec(p, from, other); err != nil {
		panic(err)
	}
}

// TryMulVec computes v *= other element-wise, server-side.
func (v *Vector) TryMulVec(p *simnet.Proc, from *simnet.Node, other *Vector) error {
	return v.elementwise(p, from, other, linalg.Mul)
}

// MulVec is TryMulVec panicking on operand or availability errors.
func (v *Vector) MulVec(p *simnet.Proc, from *simnet.Node, other *Vector) {
	if err := v.TryMulVec(p, from, other); err != nil {
		panic(err)
	}
}

// TryDivVec computes v /= other element-wise, server-side. Division by zero
// follows IEEE-754 (±Inf/NaN); algorithms that can hit zero denominators add
// an epsilon, as Adam does.
func (v *Vector) TryDivVec(p *simnet.Proc, from *simnet.Node, other *Vector) error {
	return v.elementwise(p, from, other, linalg.Div)
}

// DivVec is TryDivVec panicking on operand or availability errors.
func (v *Vector) DivVec(p *simnet.Proc, from *simnet.Node, other *Vector) {
	if err := v.TryDivVec(p, from, other); err != nil {
		panic(err)
	}
}

// TryCopyFrom overwrites v with other, server-side.
func (v *Vector) TryCopyFrom(p *simnet.Proc, from *simnet.Node, other *Vector) error {
	return v.elementwise(p, from, other, func(dst, src []float64) { copy(dst, src) })
}

// CopyFrom is TryCopyFrom panicking on operand or availability errors.
func (v *Vector) CopyFrom(p *simnet.Proc, from *simnet.Node, other *Vector) {
	if err := v.TryCopyFrom(p, from, other); err != nil {
		panic(err)
	}
}

// elementwise dispatches one in-place dense kernel (dst op= src) per shard;
// the kernels are linalg's unrolled, shard-parallel versions.
func (v *Vector) elementwise(p *simnet.Proc, from *simnet.Node, other *Vector, kernel func(dst, src []float64)) error {
	cost := v.sess.Master.Cl.Cost
	return v.zipInvoke(p, from, []*Vector{other}, 0, cost.FlopsPerElem, func(sp ShardSpan) {
		kernel(sp.Rows[0], sp.Rows[1])
	})
}

// TryScale multiplies every element by alpha, server-side, returning an error
// (wrapping ps.ErrServerDown or simnet.ErrNodeDown) when a shard stays
// unreachable — in that case the vector may be partially scaled, exactly the
// partial state the error reports.
func (v *Vector) TryScale(p *simnet.Proc, from *simnet.Node, alpha float64) error {
	cost := v.sess.Master.Cl.Cost
	return v.zipInvoke(p, from, nil, 0, cost.FlopsPerElem, func(sp ShardSpan) {
		linalg.Scale(alpha, sp.Rows[0])
	})
}

// Scale is TryScale panicking on exhausted retries, mirroring the plain/Try
// split of the PS client's row operators.
func (v *Vector) Scale(p *simnet.Proc, from *simnet.Node, alpha float64) {
	if err := v.TryScale(p, from, alpha); err != nil {
		panic(err)
	}
}

// TryFill sets every element to c, server-side, returning an error when a
// shard stays unreachable (the vector may then be partially filled).
func (v *Vector) TryFill(p *simnet.Proc, from *simnet.Node, c float64) error {
	cost := v.sess.Master.Cl.Cost
	return v.zipInvoke(p, from, nil, 0, cost.FlopsPerElem, func(sp ShardSpan) {
		linalg.Fill(sp.Rows[0], c)
	})
}

// Fill sets every element to c, server-side, and returns v for chaining —
// the paper's `DCV.derive(weight).fill(0.0)` idiom. It panics on exhausted
// retries; fault-tolerant callers use TryFill.
func (v *Vector) Fill(p *simnet.Proc, from *simnet.Node, c float64) *Vector {
	if err := v.TryFill(p, from, c); err != nil {
		panic(err)
	}
	return v
}

// TryZero resets the vector to zero server-side, returning an error when a
// shard stays unreachable.
func (v *Vector) TryZero(p *simnet.Proc, from *simnet.Node) error {
	return v.TryFill(p, from, 0)
}

// Zero resets the vector to zero server-side — `gradient.zero()` in the
// paper's training loops. It panics on exhausted retries; fault-tolerant
// callers use TryZero.
func (v *Vector) Zero(p *simnet.Proc, from *simnet.Node) { v.Fill(p, from, 0) }

// TryZipMap runs fn over every shard with all operand slices aligned in
// server memory — the general server-side computation behind the paper's
// `weight.zip(velocity, square, gradient).mapPartition{ updateModel }`
// (Figure 3). fn may mutate any of the slices; because mutation must land in
// live server memory, every operand is required to be co-located with v.
// workPerElem is the caller's estimate of compute per element per vector.
func (v *Vector) TryZipMap(p *simnet.Proc, from *simnet.Node, workPerElem float64,
	fn func(lo int, rows [][]float64), others ...*Vector) error {
	for _, ov := range others {
		if !v.Colocated(ov) {
			return ErrNotColocated
		}
	}
	return v.zipInvoke(p, from, others, 0, workPerElem, func(sp ShardSpan) {
		fn(sp.Lo, sp.Rows)
	})
}

// ZipMap is TryZipMap panicking on operand or availability errors.
func (v *Vector) ZipMap(p *simnet.Proc, from *simnet.Node, workPerElem float64,
	fn func(lo int, rows [][]float64), others ...*Vector) {
	if err := v.TryZipMap(p, from, workPerElem, fn, others...); err != nil {
		panic(err)
	}
}

// ZipReduce runs fn over every shard like ZipMap and collects one result per
// shard at the caller, each costing respBytes on the wire. It powers GBDT's
// server-side split finding, where each server returns its best local split.
func ZipReduce[R any](p *simnet.Proc, from *simnet.Node, v *Vector, workPerElem, respBytes float64,
	fn func(span ShardSpan) R, others ...*Vector) ([]R, error) {
	for _, ov := range others {
		if !v.Colocated(ov) {
			return nil, ErrNotColocated
		}
	}
	out := make([]R, v.mat.Part.NumServers())
	err := v.zipInvoke(p, from, others, respBytes, workPerElem, func(sp ShardSpan) {
		out[sp.Shard] = fn(sp)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
