package dcv

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ps"
	"repro/internal/simnet"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// TestBatchMatchesUnfusedOps runs a mixed program through one fused batch and
// checks the final vector state and every reduction against host-side math —
// the same results the unfused operator sequence produces.
func TestBatchMatchesUnfusedOps(t *testing.T) {
	sim, cl, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		driver := cl.Driver
		w, err := sess.Dense(p, 50, 4)
		if err != nil {
			t.Fatal(err)
		}
		a := w.MustDerive()
		g := w.MustDerive()
		w.Set(p, driver, seq(50))

		b := NewBatch(w)
		b.Fill(a, 2).Axpy(a, 3, w).Scale(a, 0.5)
		b.Zero(g).AddVec(g, a).SubVec(g, w)
		dotAW := b.Dot(a, w)
		sumG := b.Sum(g)
		normW := b.Norm2(w)
		b.ZipMap(a, 1, func(lo int, rows [][]float64) {
			at, gt := rows[0], rows[1]
			for i := range at {
				at[i] += gt[i]
			}
		}, g)
		if b.Len() != 10 {
			t.Fatalf("recorded %d ops, want 10", b.Len())
		}
		if err := b.Run(p, driver); err != nil {
			t.Fatal(err)
		}

		// Host-side replay of the same program.
		wantA := make([]float64, 50)
		wantG := make([]float64, 50)
		var wantDot, wantSum, wantNorm float64
		for i := range wantA {
			wi := float64(i)
			ai := (2 + 3*wi) * 0.5
			gi := ai - wi
			wantDot += ai * wi
			wantSum += gi
			wantNorm += wi * wi
			wantA[i] = ai + gi
			wantG[i] = gi
		}
		wantNorm = math.Sqrt(wantNorm)

		gotA := a.Pull(p, driver)
		gotG := g.Pull(p, driver)
		for i := range wantA {
			if !approx(gotA[i], wantA[i]) || !approx(gotG[i], wantG[i]) {
				t.Fatalf("col %d: a=%v g=%v, want %v / %v", i, gotA[i], gotG[i], wantA[i], wantG[i])
			}
		}
		if !approx(dotAW.Value(), wantDot) {
			t.Fatalf("dot = %v, want %v", dotAW.Value(), wantDot)
		}
		if !approx(sumG.Value(), wantSum) {
			t.Fatalf("sum = %v, want %v", sumG.Value(), wantSum)
		}
		if !approx(normW.Value(), wantNorm) {
			t.Fatalf("norm2 = %v, want %v", normW.Value(), wantNorm)
		}
	})
}

// TestBatchOneRequestPerServer asserts the whole point of fusion: a batch of
// k ops costs exactly one logical call per server, not k fan-outs.
func TestBatchOneRequestPerServer(t *testing.T) {
	sim, cl, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		w, err := sess.Dense(p, 40, 3)
		if err != nil {
			t.Fatal(err)
		}
		a := w.MustDerive()
		before := sess.Master.Net.Calls
		b := NewBatch(w).Fill(a, 1).Axpy(a, 2, w).Scale(a, 0.25)
		b.Sum(a)
		if err := b.Run(p, cl.Driver); err != nil {
			t.Fatal(err)
		}
		if got := sess.Master.Net.Calls - before; got != 4 {
			t.Fatalf("batch of 4 ops cost %d calls, want 4 (one per server)", got)
		}
		if sess.Master.Net.FusedOps < 4 {
			t.Fatalf("FusedOps = %d, want >= 4", sess.Master.Net.FusedOps)
		}
	})
}

// TestBatchRejectsNonColocated asserts recording against a foreign matrix is
// remembered and surfaced by Run without any communication.
func TestBatchRejectsNonColocated(t *testing.T) {
	sim, cl, sess := testSession(3)
	run(sim, func(p *simnet.Proc) {
		w, _ := sess.Dense(p, 20)
		other, _ := sess.Dense(p, 20)
		before := sess.Master.Net.Calls
		b := NewBatch(w).Axpy(w, 1, other)
		if err := b.Run(p, cl.Driver); !errors.Is(err, ErrNotColocated) {
			t.Fatalf("err = %v, want ErrNotColocated", err)
		}
		if sess.Master.Net.Calls != before {
			t.Fatal("failed batch still issued calls")
		}
		// A nil operand is also a recording error, not a panic.
		b2 := NewBatch(w).Fill(nil, 0)
		if err := b2.Run(p, cl.Driver); err == nil {
			t.Fatal("nil vector accepted")
		}
	})
}

func TestBatchSingleUse(t *testing.T) {
	sim, cl, sess := testSession(2)
	run(sim, func(p *simnet.Proc) {
		w, _ := sess.Dense(p, 10)
		b := NewBatch(w).Fill(w, 1)
		if err := b.Run(p, cl.Driver); err != nil {
			t.Fatal(err)
		}
		if err := b.Run(p, cl.Driver); err == nil {
			t.Fatal("second Run succeeded")
		}
	})
}

func TestScalarPanicsBeforeRun(t *testing.T) {
	sim, _, sess := testSession(2)
	run(sim, func(p *simnet.Proc) {
		w, _ := sess.Dense(p, 10)
		sc := NewBatch(w).Sum(w)
		defer func() {
			if recover() == nil {
				t.Error("Scalar read before Run did not panic")
			}
		}()
		sc.Value()
	})
}

// TestBatchExactlyOnceUnderChaos repeats a fused increment through a lossy
// network: the batch rides one dedup'd CallShard per server, so retried
// requests must apply the mutation exactly once.
func TestBatchExactlyOnceUnderChaos(t *testing.T) {
	sim, cl, sess := testSession(3)
	sim.EnableChaos(7, 0.15, 0)
	sess.Master.Unreliable = true
	const rounds = 60
	run(sim, func(p *simnet.Proc) {
		w, err := sess.Dense(p, 30, 2)
		if err != nil {
			t.Fatal(err)
		}
		ones := w.MustDerive().Fill(p, cl.Driver, 1)
		w.Set(p, cl.Driver, make([]float64, 30))
		for r := 0; r < rounds; r++ {
			if err := NewBatch(w).Axpy(w, 1, ones).Run(p, cl.Driver); err != nil {
				t.Fatal(err)
			}
		}
		got := w.Pull(p, cl.Driver)
		for c, v := range got {
			if v != rounds {
				t.Fatalf("col %d = %v after %d fused increments, want %d", c, v, rounds, rounds)
			}
		}
		if sess.Master.Net.Attempts <= sess.Master.Net.Calls {
			t.Fatal("chaos run recorded no retries; loss rate not exercised")
		}
	})
}

// TestTryFillSurfacesExhaustedRetries pins the Try/plain split: with a dead
// shard and finite retries, TryFill must return a typed error instead of
// silently succeeding (the pre-split operators dropped it on the floor).
func TestTryFillSurfacesExhaustedRetries(t *testing.T) {
	sim, cl, sess := testSession(3)
	sess.Master.Retry = ps.RetryConfig{TimeoutSec: 0.01, BackoffSec: 0.01, MaxBackoffSec: 0.02, MaxRetries: 3}
	run(sim, func(p *simnet.Proc) {
		w, err := sess.Dense(p, 30)
		if err != nil {
			t.Fatal(err)
		}
		sess.Master.CrashServer(0) // no monitor: stays dead
		if err := w.TryFill(p, cl.Driver, 1); !errors.Is(err, ps.ErrServerDown) {
			t.Fatalf("TryFill err = %v, want ErrServerDown", err)
		}
		if err := w.TryScale(p, cl.Driver, 2); !errors.Is(err, ps.ErrServerDown) {
			t.Fatalf("TryScale err = %v, want ErrServerDown", err)
		}
		if err := w.TryZero(p, cl.Driver); !errors.Is(err, ps.ErrServerDown) {
			t.Fatalf("TryZero err = %v, want ErrServerDown", err)
		}
		// The plain variants panic with the same error.
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Error("Fill on a dead shard did not panic")
				}
			}()
			w.Fill(p, cl.Driver, 1)
		}()
	})
}

// TestZipInvokeRejectsPartitionMismatch pins the shuffle-path compatibility
// check: an operand whose matrix carves the dimension differently (here, a
// different server count) must be rejected up front with a typed error
// instead of misaligning slices mid-shuffle.
func TestZipInvokeRejectsPartitionMismatch(t *testing.T) {
	sim := simnet.New()
	mkSess := func(servers int) (*cluster.Cluster, *Session) {
		cfg := cluster.DefaultConfig()
		cfg.Executors = 2
		cfg.Servers = servers
		cl := cluster.New(sim, cfg)
		return cl, NewSession(ps.NewMaster(cl))
	}
	cl4, sess4 := mkSess(4)
	_, sess3 := mkSess(3)
	run(sim, func(p *simnet.Proc) {
		a, err := sess4.Dense(p, 60)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sess3.Dense(p, 60)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.TryAddVec(p, cl4.Driver, b); !errors.Is(err, ErrPartitionMismatch) {
			t.Fatalf("AddVec err = %v, want ErrPartitionMismatch", err)
		}
		if _, err := a.TryDot(p, cl4.Driver, b); !errors.Is(err, ErrPartitionMismatch) {
			t.Fatalf("Dot err = %v, want ErrPartitionMismatch", err)
		}
		if err := a.TryAxpy(p, cl4.Driver, 1, b); !errors.Is(err, ErrPartitionMismatch) {
			t.Fatalf("Axpy err = %v, want ErrPartitionMismatch", err)
		}
		// Same layout, different matrix: still allowed via the shuffle path.
		c, err := sess4.Dense(p, 60)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.TryAddVec(p, cl4.Driver, c); err != nil {
			t.Fatalf("same-layout shuffle rejected: %v", err)
		}
	})
}
