package dcv

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/linalg"
	"repro/internal/ps"
	"repro/internal/simnet"
)

func testSession(servers int) (*simnet.Sim, *cluster.Cluster, *Session) {
	sim := simnet.New()
	cfg := cluster.DefaultConfig()
	cfg.Executors = 4
	cfg.Servers = servers
	cl := cluster.New(sim, cfg)
	return sim, cl, NewSession(ps.NewMaster(cl))
}

func run(sim *simnet.Sim, fn func(p *simnet.Proc)) {
	sim.Spawn("driver", fn)
	sim.Run()
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestDenseDeriveColocation(t *testing.T) {
	sim, _, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		w, err := sess.Dense(p, 100, 4)
		if err != nil {
			t.Error(err)
			return
		}
		v := w.MustDerive()
		s := w.MustDerive()
		g := w.MustDerive()
		if !w.Colocated(v) || !w.Colocated(s) || !w.Colocated(g) {
			t.Error("derived vectors not co-located")
		}
		if w.Row() == v.Row() || v.Row() == s.Row() || s.Row() == g.Row() {
			t.Error("derived vectors share rows")
		}
		if _, err := g.Derive(); err != ErrNoFreeRows {
			t.Errorf("5th derive from capacity-4 matrix: err = %v, want ErrNoFreeRows", err)
		}
	})
}

func TestDefaultCapacity(t *testing.T) {
	sim, _, sess := testSession(2)
	run(sim, func(p *simnet.Proc) {
		w, _ := sess.Dense(p, 10)
		for i := 0; i < DefaultCapacity-1; i++ {
			if _, err := w.Derive(); err != nil {
				t.Errorf("derive %d failed: %v", i, err)
			}
		}
		if _, err := w.Derive(); err == nil {
			t.Error("derive beyond default capacity succeeded")
		}
	})
}

func TestIndependentDenseNotColocated(t *testing.T) {
	sim, _, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 100)
		b, _ := sess.Dense(p, 100)
		if a.Colocated(b) {
			t.Error("independently created DCVs should not be co-located")
		}
		// Placement rotation: the same logical shard lives on different
		// physical machines.
		if a.Matrix().ServerNode(0) == b.Matrix().ServerNode(0) {
			t.Error("placement rotation did not separate the matrices")
		}
	})
}

func TestFillPullSetRoundTrip(t *testing.T) {
	sim, cl, sess := testSession(3)
	run(sim, func(p *simnet.Proc) {
		v, _ := sess.Dense(p, 50)
		worker := cl.Executors[0]
		v.Fill(p, cl.Driver, 2.5)
		got := v.Pull(p, worker)
		for i, x := range got {
			if x != 2.5 {
				t.Errorf("after fill, [%d] = %v", i, x)
			}
		}
		v.Set(p, worker, seq(50))
		got = v.Pull(p, worker)
		for i, x := range got {
			if x != float64(i) {
				t.Errorf("after set, [%d] = %v", i, x)
			}
		}
		v.Zero(p, cl.Driver)
		if v.Sum(p, worker) != 0 {
			t.Error("zero did not clear the vector")
		}
	})
}

func TestRowAggregatesViaDCV(t *testing.T) {
	sim, cl, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		v, _ := sess.Dense(p, 10)
		w := cl.Executors[0]
		v.Set(p, w, []float64{3, 0, 4, 0, 0, 0, 0, 0, 0, 0})
		if got := v.Sum(p, w); got != 7 {
			t.Errorf("Sum = %v", got)
		}
		if got := v.Nnz(p, w); got != 2 {
			t.Errorf("Nnz = %v", got)
		}
		if got := v.Norm2(p, w); math.Abs(got-5) > 1e-9 {
			t.Errorf("Norm2 = %v", got)
		}
	})
}

func TestDotColocatedCorrect(t *testing.T) {
	sim, cl, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 64, 2)
		b := a.MustDerive()
		w := cl.Executors[0]
		a.Set(p, w, seq(64))
		ones := make([]float64, 64)
		linalg.Fill(ones, 1)
		b.Set(p, w, ones)
		got, err := a.TryDot(p, w, b)
		if err != nil {
			t.Error(err)
		}
		if want := 64.0 * 63 / 2; math.Abs(got-want) > 1e-9 {
			t.Errorf("dot = %v, want %v", got, want)
		}
	})
}

func TestDotNonColocatedCorrectButCostly(t *testing.T) {
	// The paper's Figure 4: dot between independently created DCVs still
	// returns the right answer but shuffles vector data between servers.
	dotRun := func(coloc bool) (float64, float64) {
		sim, cl, sess := testSession(4)
		var got float64
		run(sim, func(p *simnet.Proc) {
			a, _ := sess.Dense(p, 10000, 2)
			var b *Vector
			if coloc {
				b = a.MustDerive()
			} else {
				b, _ = sess.Dense(p, 10000, 2)
			}
			w := cl.Executors[0]
			a.Set(p, w, seq(10000))
			b.Set(p, w, seq(10000))
			before := serverBytes(cl)
			got, _ = a.TryDot(p, w, b)
			_ = before
		})
		return got, serverBytes(cl)
	}
	want := 0.0
	for i := 0; i < 10000; i++ {
		want += float64(i) * float64(i)
	}
	colocVal, colocBytes := dotRun(true)
	shufVal, shufBytes := dotRun(false)
	if math.Abs(colocVal-want) > 1e-6*want || math.Abs(shufVal-want) > 1e-6*want {
		t.Fatalf("dot values wrong: coloc=%v shuffle=%v want=%v", colocVal, shufVal, want)
	}
	if shufBytes < colocBytes+8*10000/2 {
		t.Fatalf("shuffle dot (%v server bytes) not clearly costlier than co-located (%v)", shufBytes, colocBytes)
	}
}

func serverBytes(cl *cluster.Cluster) float64 {
	var total float64
	for _, s := range cl.Servers {
		total += s.BytesSent
	}
	return total
}

func TestAxpy(t *testing.T) {
	sim, cl, sess := testSession(3)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 30, 2)
		b := a.MustDerive()
		w := cl.Executors[0]
		a.Set(p, w, seq(30))
		ones := make([]float64, 30)
		linalg.Fill(ones, 2)
		b.Set(p, w, ones)
		if err := a.TryAxpy(p, w, 0.5, b); err != nil {
			t.Error(err)
		}
		got := a.Pull(p, w)
		for i := range got {
			if math.Abs(got[i]-(float64(i)+1)) > 1e-9 {
				t.Errorf("axpy[%d] = %v, want %v", i, got[i], float64(i)+1)
			}
		}
	})
}

func TestElementwiseOps(t *testing.T) {
	sim, cl, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 20, 6)
		b := a.MustDerive()
		w := cl.Executors[0]
		av := seq(20)
		bv := make([]float64, 20)
		for i := range bv {
			bv[i] = float64(i%4) + 1
		}
		reset := func() {
			a.Set(p, w, av)
			b.Set(p, w, bv)
		}
		check := func(name string, got []float64, f func(x, y float64) float64) {
			for i := range got {
				if math.Abs(got[i]-f(av[i], bv[i])) > 1e-9 {
					t.Errorf("%s[%d] = %v, want %v", name, i, got[i], f(av[i], bv[i]))
				}
			}
		}
		reset()
		if err := a.TryAddVec(p, w, b); err != nil {
			t.Error(err)
		}
		check("add", a.Pull(p, w), func(x, y float64) float64 { return x + y })
		reset()
		if err := a.TrySubVec(p, w, b); err != nil {
			t.Error(err)
		}
		check("sub", a.Pull(p, w), func(x, y float64) float64 { return x - y })
		reset()
		if err := a.TryMulVec(p, w, b); err != nil {
			t.Error(err)
		}
		check("mul", a.Pull(p, w), func(x, y float64) float64 { return x * y })
		reset()
		if err := a.TryDivVec(p, w, b); err != nil {
			t.Error(err)
		}
		check("div", a.Pull(p, w), func(x, y float64) float64 { return x / y })
		reset()
		if err := a.TryCopyFrom(p, w, b); err != nil {
			t.Error(err)
		}
		check("copy", a.Pull(p, w), func(_, y float64) float64 { return y })
	})
}

func TestScale(t *testing.T) {
	sim, cl, sess := testSession(2)
	run(sim, func(p *simnet.Proc) {
		v, _ := sess.Dense(p, 10)
		w := cl.Executors[0]
		v.Set(p, w, seq(10))
		v.Scale(p, w, -2)
		got := v.Pull(p, w)
		for i := range got {
			if got[i] != -2*float64(i) {
				t.Errorf("scale[%d] = %v", i, got[i])
			}
		}
	})
}

func TestDimensionMismatchRejected(t *testing.T) {
	sim, cl, sess := testSession(2)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 10)
		b, _ := sess.Dense(p, 20)
		if _, err := a.TryDot(p, cl.Executors[0], b); err == nil {
			t.Error("dot across dimensions accepted")
		}
		if err := a.TryAddVec(p, cl.Executors[0], b); err == nil {
			t.Error("add across dimensions accepted")
		}
	})
}

func TestZipMapAdamStyleUpdate(t *testing.T) {
	// The paper's Figure 3 model update: one zip over four co-located DCVs,
	// all computation on servers, correct results.
	sim, cl, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		w, _ := sess.Dense(p, 40, 4)
		vel := w.MustDerive().Fill(p, cl.Driver, 0)
		sq := w.MustDerive().Fill(p, cl.Driver, 0)
		grad := w.MustDerive()
		worker := cl.Executors[0]
		gv := make([]float64, 40)
		linalg.Fill(gv, 0.5)
		grad.Set(p, worker, gv)

		driverWorkBefore := cl.Driver.WorkDone
		err := w.TryZipMap(p, cl.Driver, 8, func(lo int, rows [][]float64) {
			wt, v, s, g := rows[0], rows[1], rows[2], rows[3]
			for i := range wt {
				s[i] = 0.9*s[i] + 0.1*g[i]*g[i]
				v[i] = 0.999*v[i] + 0.001*g[i]
				wt[i] -= 0.618 * v[i] / (math.Sqrt(s[i]) + 1e-8)
			}
		}, vel, sq, grad)
		if err != nil {
			t.Error(err)
		}
		if cl.Driver.WorkDone != driverWorkBefore {
			t.Error("zip charged compute to the driver; it must be server-side")
		}
		got := w.Pull(p, worker)
		wantS := 0.1 * 0.25
		wantV := 0.001 * 0.5
		want := -0.618 * wantV / (math.Sqrt(wantS) + 1e-8)
		for i := range got {
			if math.Abs(got[i]-want) > 1e-12 {
				t.Errorf("zip update [%d] = %v, want %v", i, got[i], want)
			}
		}
	})
}

func TestZipMapRequiresColocation(t *testing.T) {
	sim, cl, sess := testSession(2)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 10)
		b, _ := sess.Dense(p, 10)
		err := a.TryZipMap(p, cl.Driver, 1, func(int, [][]float64) {}, b)
		if err != ErrNotColocated {
			t.Errorf("err = %v, want ErrNotColocated", err)
		}
	})
}

func TestZipReducePartials(t *testing.T) {
	sim, cl, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 40, 2)
		b := a.MustDerive()
		w := cl.Executors[0]
		a.Set(p, w, seq(40))
		b.Set(p, w, seq(40))
		parts, err := ZipReduce(p, cl.Driver, a, 2, 16, func(sp ShardSpan) float64 {
			var max float64 = math.Inf(-1)
			for i := range sp.Rows[0] {
				if s := sp.Rows[0][i] + sp.Rows[1][i]; s > max {
					max = s
				}
			}
			return max
		}, b)
		if err != nil {
			t.Error(err)
		}
		if len(parts) != 4 {
			t.Fatalf("partials = %v", parts)
		}
		best := math.Inf(-1)
		for _, v := range parts {
			if v > best {
				best = v
			}
		}
		if best != 78 {
			t.Errorf("max over partials = %v, want 78", best)
		}
	})
}

func TestSparseVectorCheaperPull(t *testing.T) {
	pullBytes := func(sparse bool) float64 {
		sim, cl, sess := testSession(4)
		run(sim, func(p *simnet.Proc) {
			var v *Vector
			if sparse {
				v, _ = sess.Sparse(p, 100000)
			} else {
				v, _ = sess.Dense(p, 100000)
			}
			w := cl.Executors[0]
			delta, _ := linalg.NewSparse([]int{5, 500, 50000}, []float64{1, 2, 3})
			v.Add(p, w, delta)
			cl.Executors[1].BytesRecv = 0
			v.Pull(p, cl.Executors[1])
		})
		return cl.Executors[1].BytesRecv
	}
	sp := pullBytes(true)
	dn := pullBytes(false)
	if sp*50 > dn {
		t.Fatalf("sparse DCV pull (%v B) not ≪ dense pull (%v B)", sp, dn)
	}
}

func TestSparsePullValuesMatchDense(t *testing.T) {
	sim, cl, sess := testSession(3)
	run(sim, func(p *simnet.Proc) {
		v, _ := sess.Sparse(p, 1000)
		w := cl.Executors[0]
		delta, _ := linalg.NewSparse([]int{1, 999, 500}, []float64{-1, 7, 3})
		v.Add(p, w, delta)
		got := v.Pull(p, w)
		if got[1] != -1 || got[500] != 3 || got[999] != 7 {
			t.Errorf("sparse pull values wrong: %v %v %v", got[1], got[500], got[999])
		}
		if linalg.NnzDense(got) != 3 {
			t.Errorf("unexpected extra nonzeros")
		}
	})
}

func TestDeriveIsFree(t *testing.T) {
	sim, _, sess := testSession(4)
	var before, after float64
	run(sim, func(p *simnet.Proc) {
		w, _ := sess.Dense(p, 1000, 5)
		before = p.Now()
		w.MustDerive()
		w.MustDerive()
		after = p.Now()
	})
	if after != before {
		t.Fatalf("derive consumed %v seconds of virtual time; must be free", after-before)
	}
}

// Property: any sequence of co-located element-wise ops matches a dense
// two-vector oracle.
func TestColumnOpsOracleProperty(t *testing.T) {
	f := func(ops []uint8, serversRaw uint8) bool {
		servers := int(serversRaw%5) + 1
		if len(ops) > 12 {
			ops = ops[:12]
		}
		dim := 37
		sim, cl, sess := testSession(servers)
		oa, ob := make([]float64, dim), make([]float64, dim)
		for i := 0; i < dim; i++ {
			oa[i] = float64(i%5) + 1
			ob[i] = float64(i%3) + 1
		}
		good := true
		run(sim, func(p *simnet.Proc) {
			a, err := sess.Dense(p, dim, 2)
			if err != nil {
				good = false
				return
			}
			b := a.MustDerive()
			w := cl.Executors[0]
			a.Set(p, w, oa)
			b.Set(p, w, ob)
			for _, op := range ops {
				switch op % 5 {
				case 0:
					if a.TryAddVec(p, w, b) != nil {
						good = false
					}
					for i := range oa {
						oa[i] += ob[i]
					}
				case 1:
					if a.TrySubVec(p, w, b) != nil {
						good = false
					}
					for i := range oa {
						oa[i] -= ob[i]
					}
				case 2:
					if a.TryMulVec(p, w, b) != nil {
						good = false
					}
					for i := range oa {
						oa[i] *= ob[i]
					}
				case 3:
					if a.TryAxpy(p, w, 0.5, b) != nil {
						good = false
					}
					for i := range oa {
						oa[i] += 0.5 * ob[i]
					}
				case 4:
					a.Scale(p, w, 0.9)
					for i := range oa {
						oa[i] *= 0.9
					}
				}
			}
			got := a.Pull(p, w)
			for i := range got {
				rel := math.Abs(got[i]-oa[i]) / (1 + math.Abs(oa[i]))
				if rel > 1e-9 {
					good = false
					return
				}
			}
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseAcrossIndependentMatrices(t *testing.T) {
	// Non-co-located operands still compute correctly: the engine shuffles
	// the operand's ranges between servers first. Only the target vector is
	// mutated, so reads-from-copies are safe.
	sim, cl, sess := testSession(4)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 40)
		b, _ := sess.Dense(p, 40) // independent: rotated placement
		w := cl.Executors[0]
		a.Set(p, w, seq(40))
		ones := make([]float64, 40)
		linalg.Fill(ones, 3)
		b.Set(p, w, ones)
		if err := a.TryAddVec(p, w, b); err != nil {
			t.Error(err)
		}
		got := a.Pull(p, w)
		for i := range got {
			if got[i] != float64(i)+3 {
				t.Errorf("add[%d] = %v, want %v", i, got[i], float64(i)+3)
			}
		}
		// b must be untouched.
		bv := b.Pull(p, w)
		for i := range bv {
			if bv[i] != 3 {
				t.Errorf("operand mutated at %d: %v", i, bv[i])
			}
		}
	})
}

func TestZipReduceRequiresColocation(t *testing.T) {
	sim, cl, sess := testSession(2)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 10)
		b, _ := sess.Dense(p, 10)
		_, err := ZipReduce(p, cl.Driver, a, 1, 8, func(sp ShardSpan) int { return 0 }, b)
		if err != ErrNotColocated {
			t.Errorf("err = %v, want ErrNotColocated", err)
		}
	})
}

func TestPullIndicesUnderRotatedPlacement(t *testing.T) {
	// Sparse pulls must route by logical shard even when the matrix's
	// physical placement is rotated (second matrix gets offset 1).
	sim, cl, sess := testSession(5)
	run(sim, func(p *simnet.Proc) {
		_, _ = sess.Dense(p, 10) // burn an offset
		v, _ := sess.Dense(p, 1000)
		w := cl.Executors[0]
		delta, _ := linalg.NewSparse([]int{0, 199, 200, 500, 999}, []float64{1, 2, 3, 4, 5})
		v.Add(p, w, delta)
		got := v.PullIndices(p, w, []int{0, 199, 200, 500, 999})
		want := []float64{1, 2, 3, 4, 5}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("PullIndices[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})
}

func TestSumNnzNorm2OnDerived(t *testing.T) {
	sim, cl, sess := testSession(3)
	run(sim, func(p *simnet.Proc) {
		a, _ := sess.Dense(p, 30, 2)
		b := a.MustDerive()
		w := cl.Executors[0]
		vals := make([]float64, 30)
		vals[7], vals[21] = 3, -4
		b.Set(p, w, vals)
		if got := b.Sum(p, w); got != -1 {
			t.Errorf("derived Sum = %v", got)
		}
		if got := b.Nnz(p, w); got != 2 {
			t.Errorf("derived Nnz = %v", got)
		}
		if got := b.Norm2(p, w); math.Abs(got-5) > 1e-9 {
			t.Errorf("derived Norm2 = %v", got)
		}
	})
}
