// Package core assembles the PS2 system: it boots a simulated cluster, a
// Spark-like dataflow application (internal/rdd) and a parameter-server
// application (internal/ps) side by side — two separate applications, as in
// the paper's Section 5.1 — and exposes a DCV session (internal/dcv) over the
// servers. An Engine is what user programs, examples and benchmarks create;
// training jobs run as the driver process of the simulation and use RDD
// operators for data parallelism and DCV operators for model management.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dcv"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/ps"
	"repro/internal/rdd"
	"repro/internal/simnet"
)

// Options configures an engine. The zero value is not valid; use
// DefaultOptions and override.
type Options struct {
	Executors int
	Servers   int
	Node      simnet.NodeConfig
	Cost      cluster.CostModel

	// TaskFailProb injects task-attempt failures into the dataflow scheduler
	// (Fig 13(c)).
	TaskFailProb float64
	// Seed seeds the scheduler's failure injection.
	Seed uint64

	// Faults schedules environment-injected failures (machine crashes at
	// virtual times, message loss, extra delay). Setting it arms the chaos
	// layer and, unless Detector overrides, the default heartbeat failure
	// detector with automatic recovery.
	Faults *FaultPlan

	// Detector overrides the heartbeat failure detector. Zero value: the
	// detector runs with defaults when Faults is set, and not at all
	// otherwise. Set IntervalSec > 0 to force it on.
	Detector ps.DetectorConfig

	// RPC overrides the client retry policy (zero fields take defaults).
	RPC ps.RetryConfig

	// FullCheckpoints disables delta checkpointing, shipping full snapshots
	// on every Checkpoint (the ablation arm of the recovery benchmark).
	FullCheckpoints bool

	// Trace enables the span tracer: RPCs, server ops, fused batches, tasks
	// and recovery activity are recorded as structured spans, exportable as a
	// Chrome/Perfetto trace (Engine.Tracer, obs.WriteChrome) and folded into
	// Snapshot's phase breakdown. Off by default; the disabled path costs one
	// nil check per instrumentation site.
	Trace bool

	// Admission installs per-server admission control on the PS master from
	// boot: every data-plane call is charged against a token bucket with a
	// bounded, class-aware queue, and overflow is shed with ps.ErrOverload.
	// nil (the default) admits everything at zero cost. Runs that want the
	// gate only for a serving phase can instead install it mid-run with
	// ps.Master.SetAdmission.
	Admission *ps.AdmissionConfig
}

// CrashEvent schedules the crash of one machine (by role-local index) at a
// virtual time.
type CrashEvent struct {
	AtSec float64
	Index int
}

// FaultPlan describes the environment's misbehaviour for a run: scheduled
// PS-server and executor crashes, plus ambient per-message loss and delay.
// Crashes land mid-simulation — in the middle of whatever RPCs are in
// flight — and nothing in the job's code is told about them; detection and
// recovery are the system's problem.
type FaultPlan struct {
	// Seed drives the chaos layer's loss/delay draws (0 picks a fixed seed).
	Seed uint64
	// LossProb is the probability that any single message is dropped.
	LossProb float64
	// ExtraDelaySec is the maximum uniform extra one-way delay per message.
	ExtraDelaySec float64

	ServerCrashes   []CrashEvent
	ExecutorCrashes []CrashEvent

	// LinkFaults schedules per-link chaos overrides (targeted loss/delay on
	// server↔server routes — e.g. the stream path of an elastic migration).
	LinkFaults []LinkFault
}

// LinkFault schedules a per-link chaos override: from AtSec on, messages from
// server Src to server Dst are dropped with probability LossProb and delayed
// by up to DelaySec extra. Src/Dst are server-role indices, resolved to
// machines when the fault fires — so links to servers that join via elastic
// scale-out after the plan was written can still be targeted.
type LinkFault struct {
	AtSec    float64
	Src, Dst int
	LossProb float64
	DelaySec float64
}

// DefaultOptions mirrors the paper's common setup: 20 executors, 20 servers.
func DefaultOptions() Options {
	cfg := cluster.DefaultConfig()
	return Options{
		Executors: cfg.Executors,
		Servers:   cfg.Servers,
		Node:      cfg.Node,
		Cost:      cfg.Cost,
		Seed:      1,
	}
}

// Engine is one PS2 application instance.
type Engine struct {
	Sim     *simnet.Sim
	Cluster *cluster.Cluster
	RDD     *rdd.Context
	PS      *ps.Master
	DCV     *dcv.Session

	faults   *FaultPlan
	detector ps.DetectorConfig
	monitor  bool
}

// NewEngine boots the cluster and both applications.
func NewEngine(opt Options) *Engine {
	sim := simnet.New()
	cl := cluster.New(sim, cluster.Config{
		Executors: opt.Executors,
		Servers:   opt.Servers,
		Node:      opt.Node,
		Cost:      opt.Cost,
	})
	ctx := rdd.NewContext(cl)
	ctx.FailProb = opt.TaskFailProb
	if opt.Seed != 0 {
		ctx.Seed(opt.Seed)
	}
	master := ps.NewMaster(cl)
	if opt.RPC != (ps.RetryConfig{}) {
		master.Retry = opt.RPC
	}
	master.DeltaCheckpoints = !opt.FullCheckpoints
	if opt.Admission != nil {
		adm, err := ps.NewAdmissionControl(*opt.Admission)
		if err != nil {
			panic(err) // configuration error, same contract as a bad Options.Servers
		}
		master.SetAdmission(adm)
	}
	detector := opt.Detector
	if detector == (ps.DetectorConfig{}) {
		// A wholly unset detector config means "the defaults", not
		// "detect but never recover".
		detector = ps.DefaultDetectorConfig()
	}
	if opt.Faults != nil {
		seed := opt.Faults.Seed
		if seed == 0 {
			seed = 0xfa17
		}
		sim.EnableChaos(seed, opt.Faults.LossProb, opt.Faults.ExtraDelaySec)
		master.Unreliable = true
	}
	if opt.Trace {
		sim.EnableTrace()
	}
	return &Engine{
		Sim:      sim,
		Cluster:  cl,
		RDD:      ctx,
		PS:       master,
		DCV:      dcv.NewSession(master),
		faults:   opt.Faults,
		detector: detector,
		monitor:  opt.Faults != nil || opt.Detector.IntervalSec > 0,
	}
}

// Run executes job as the driver process and runs the simulation to
// completion, returning the virtual time at which the job finished. If the
// engine has a fault plan, the chaos controller and the heartbeat failure
// detector run alongside the job and are shut down when it completes.
func (e *Engine) Run(job func(p *simnet.Proc)) simnet.Time {
	var end simnet.Time
	stop := e.Sim.NewSignal()
	if e.faults != nil {
		plan := &simnet.FaultPlan{}
		for _, ev := range e.faults.ServerCrashes {
			ev := ev
			plan.Actions = append(plan.Actions, simnet.FaultAction{
				At:   ev.AtSec,
				Name: fmt.Sprintf("crash-server-%d", ev.Index),
				Do:   func() { e.PS.CrashServer(ev.Index) },
			})
		}
		for _, ev := range e.faults.ExecutorCrashes {
			ev := ev
			plan.Actions = append(plan.Actions, simnet.FaultAction{
				At:   ev.AtSec,
				Name: fmt.Sprintf("crash-executor-%d", ev.Index),
				Do:   func() { e.RDD.CrashExecutor(ev.Index) },
			})
		}
		for _, lf := range e.faults.LinkFaults {
			lf := lf
			plan.Actions = append(plan.Actions, simnet.FaultAction{
				At:   lf.AtSec,
				Name: fmt.Sprintf("link-fault-%d-%d", lf.Src, lf.Dst),
				Do: func() {
					c := e.Sim.Chaos()
					srvs := e.Cluster.Servers
					if c == nil || lf.Src >= len(srvs) || lf.Dst >= len(srvs) {
						return
					}
					c.SetLinkLoss(srvs[lf.Src].ID, srvs[lf.Dst].ID, lf.LossProb)
					if lf.DelaySec > 0 {
						c.SetLinkDelay(srvs[lf.Src].ID, srvs[lf.Dst].ID, simnet.Time(lf.DelaySec))
					}
				},
			})
		}
		e.Sim.StartFaultPlan(plan, stop)
	}
	if e.monitor {
		e.PS.StartMonitor(e.detector)
	}
	e.Sim.Spawn("driver", func(p *simnet.Proc) {
		job(p)
		end = p.Now()
		stop.Fire()
		e.PS.StopMonitor()
	})
	e.Sim.Run()
	return end
}

// Snapshot gathers every end-of-run statistic into one structured report:
// communication (RPC counters, per-role NIC bytes, chaos drops), the
// self-healing subsystem, operator fusion, the serving tier (reads, snapshot
// pins, admission queueing/shedding), and — when the run was traced — the
// span-derived phase breakdown. It is the single reporting entry point.
func (e *Engine) Snapshot() obs.Snapshot {
	const mb = 1e6
	s := obs.Snapshot{
		WallSec: float64(e.Sim.Now()),
		Events:  e.Sim.EventsProcessed(),
		Net: obs.NetSnapshot{
			RPCCalls:        e.PS.Net.Calls,
			RPCAttempts:     e.PS.Net.Attempts,
			DedupHits:       e.PS.Net.DedupHits,
			DedupPruned:     e.PS.Net.DedupPruned,
			Transport:       e.PS.Transport().Name(),
			TransportSends:  e.PS.Transport().Stats().Sends,
			TransportErrors: e.PS.Transport().Stats().SendErrors,
			TransportMB:     e.PS.Transport().Stats().Bytes / mb,
			DriverSentMB:    e.Cluster.Driver.BytesSent / mb,
			DriverRecvMB:    e.Cluster.Driver.BytesRecv / mb,
		},
		Recovery: obs.RecoverySnapshot{
			ServerCrashes:          e.PS.Recovery.ServerCrashes,
			Detections:             e.PS.Recovery.Detections,
			DetectLatencySum:       e.PS.Recovery.DetectLatencySum,
			Recoveries:             e.PS.Recovery.Recoveries,
			RecoverySecSum:         e.PS.Recovery.RecoverySecSum,
			RestoreBytes:           e.PS.Recovery.RestoreBytes,
			ZeroRestoredShards:     e.PS.Recovery.ZeroRestoredShards,
			CheckpointBytesWritten: e.PS.Recovery.CheckpointBytesWritten,
			CheckpointBytesFull:    e.PS.Recovery.CheckpointBytesFull,
		},
		Fusion: obs.FusionSnapshot{
			Batches:  e.PS.Net.Batches,
			FusedOps: e.PS.Net.FusedOps,
		},
		Migration: obs.MigrationSnapshot{
			Migrations:     e.PS.Migration.Migrations,
			Aborts:         e.PS.Migration.Aborts,
			ServersAdded:   e.PS.Migration.ServersAdded,
			ServersRemoved: e.PS.Migration.ServersRemoved,
			BulkBytes:      e.PS.Migration.BulkBytes,
			DeltaBytes:     e.PS.Migration.DeltaBytes,
			GateClosedSec:  e.PS.Migration.GateClosedSec,
		},
		Serve: obs.ServeSnapshot{
			Reads:           e.PS.Serve.Reads,
			ReadVals:        e.PS.Serve.ReadVals,
			SnapshotsPinned: e.PS.Serve.SnapshotsPinned,
			SnapshotReads:   e.PS.Serve.SnapshotReads,
			SnapshotFences:  e.PS.Serve.SnapshotFences,
			Admitted:        e.PS.Serve.Admitted,
			Delayed:         e.PS.Serve.Delayed,
			QueueDelaySec:   e.PS.Serve.QueueDelaySec,
			MaxQueueDepth:   e.PS.Serve.MaxQueueDepth,
			ShedServe:       e.PS.Serve.ShedServe,
			ShedTrain:       e.PS.Serve.ShedTrain,
		},
		Cache: obs.CacheSnapshot{
			Hits:           e.PS.Cache.Hits,
			Misses:         e.PS.Cache.Misses,
			Validations:    e.PS.Cache.Validations,
			ValidationHits: e.PS.Cache.ValidationHits,
			Evictions:      e.PS.Cache.Evictions,
			EpochFences:    e.PS.Cache.EpochFences,
			PulledMB:       e.PS.Cache.PulledBytes / mb,
			BaselineMB:     e.PS.Cache.BaselineBytes / mb,
			CombinedPushes: e.PS.Cache.CombinedPushes,
			Flushes:        e.PS.Cache.Flushes,
			FlushedMB:      e.PS.Cache.FlushedBytes / mb,
			FlushBaseMB:    e.PS.Cache.FlushBaselineBytes / mb,
		},
	}
	cons := e.PS.ConsistencyReport()
	s.Consistency = obs.ConsistencySnapshot{
		Policy:         cons.Policy,
		ServedCached:   cons.ServedCached,
		Revalidated:    cons.Revalidated,
		HardPulled:     cons.HardPulled,
		Tightenings:    cons.Tightenings,
		Relaxations:    cons.Relaxations,
		EffectiveBound: cons.EffectiveBound,
	}
	pst := par.PoolStats()
	s.Par = obs.ParSnapshot{
		Calls:    pst.Calls,
		Inline:   pst.Inline,
		Parallel: pst.Parallel,
		WidthSum: pst.WidthSum,
		MaxWidth: pst.MaxWidth,
	}
	if c := e.Sim.Chaos(); c != nil {
		s.Net.MessagesLost = c.MessagesLost
	}
	load := e.PS.LoadReport()
	s.Load.Ops = make([]float64, len(load))
	s.Load.Bytes = make([]float64, len(load))
	for i, l := range load {
		s.Load.Ops[i] = float64(l.Ops)
		s.Load.Bytes[i] = l.Bytes
	}
	for _, n := range e.Cluster.Executors {
		s.Net.ExecutorSentMB += n.BytesSent / mb
		s.Net.ExecutorRecvMB += n.BytesRecv / mb
		s.Phases.ExecutorCoreSec += n.WorkDone / n.WorkRate()
	}
	for _, n := range e.Cluster.Servers {
		s.Net.ServerSentMB += n.BytesSent / mb
		s.Net.ServerRecvMB += n.BytesRecv / mb
		s.Phases.ServerCoreSec += n.WorkDone / n.WorkRate()
	}
	for _, n := range e.Cluster.Retired {
		// Servers scaled in mid-run still did work while they were members.
		s.Net.ServerSentMB += n.BytesSent / mb
		s.Net.ServerRecvMB += n.BytesRecv / mb
		s.Phases.ServerCoreSec += n.WorkDone / n.WorkRate()
	}
	if t := e.Sim.Tracer(); t != nil {
		s.Phases.Traced = true
		s.Phases.PhaseBreakdown = t.Phases()
	}
	return s
}

// Tracer returns the engine's span tracer, or nil when Options.Trace was off.
func (e *Engine) Tracer() *obs.Tracer { return e.Sim.Tracer() }

// Driver returns the coordinator machine (the Spark driver, which also hosts
// the PS-master).
func (e *Engine) Driver() *simnet.Node { return e.Cluster.Driver }

// Trace is a convergence curve: (virtual time, metric) samples appended as
// training progresses. Experiments compare systems by the time each trace
// needs to reach a target metric, exactly how the paper reads its loss
// figures.
type Trace struct {
	Name   string
	Times  []float64
	Values []float64
}

// Add appends one sample.
func (t *Trace) Add(time, value float64) {
	t.Times = append(t.Times, time)
	t.Values = append(t.Values, value)
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Times) }

// Final returns the last metric value, or NaN when empty.
func (t *Trace) Final() float64 {
	if len(t.Values) == 0 {
		return math.NaN()
	}
	return t.Values[len(t.Values)-1]
}

// TimeToReach returns the first virtual time at which the metric dropped to
// target or below, or +Inf if it never did.
func (t *Trace) TimeToReach(target float64) float64 {
	for i, v := range t.Values {
		if v <= target {
			return t.Times[i]
		}
	}
	return math.Inf(1)
}

// TimeToReachRising is TimeToReach for metrics that grow toward the target
// (e.g. log-likelihood).
func (t *Trace) TimeToReachRising(target float64) float64 {
	for i, v := range t.Values {
		if v >= target {
			return t.Times[i]
		}
	}
	return math.Inf(1)
}

// Best returns the minimum metric value seen, or NaN when empty.
func (t *Trace) Best() float64 {
	if len(t.Values) == 0 {
		return math.NaN()
	}
	best := t.Values[0]
	for _, v := range t.Values[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// String renders a compact summary.
func (t *Trace) String() string {
	if t.Len() == 0 {
		return fmt.Sprintf("%s: empty", t.Name)
	}
	return fmt.Sprintf("%s: %d samples, final=%.4f at t=%.1fs", t.Name, t.Len(), t.Final(), t.Times[len(t.Times)-1])
}

// Downsample returns up to n evenly spaced samples (for printing curves).
// The first and last samples are always kept — the final value is what
// convergence tables read — with the interior points spread evenly between
// them, whether or not n divides the trace length.
func (t *Trace) Downsample(n int) *Trace {
	if t.Len() <= n || n < 2 {
		return t
	}
	out := &Trace{Name: t.Name}
	last := t.Len() - 1
	for i := 0; i < n-1; i++ {
		j := i * last / (n - 1)
		out.Add(t.Times[j], t.Values[j])
	}
	out.Add(t.Times[last], t.Values[last])
	return out
}

// Speedup returns how many times faster a is than b at reaching target
// (falling metric). Returns NaN if either never reaches it.
func Speedup(a, b *Trace, target float64) float64 {
	ta, tb := a.TimeToReach(target), b.TimeToReach(target)
	if math.IsInf(ta, 1) || math.IsInf(tb, 1) || ta == 0 {
		return math.NaN()
	}
	return tb / ta
}

// CommonTarget picks a loss target both traces reach: slightly above the
// worse of the two best losses. Used by experiments to compare convergence
// fairly when systems plateau at different levels.
func CommonTarget(traces ...*Trace) float64 {
	worst := math.Inf(-1)
	for _, t := range traces {
		if b := t.Best(); b > worst {
			worst = b
		}
	}
	return worst * 1.02
}

// SortedTimes returns the distinct sample times across traces, ascending
// (handy for table rendering).
func SortedTimes(traces ...*Trace) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, t := range traces {
		for _, tm := range t.Times {
			if !seen[tm] {
				seen[tm] = true
				out = append(out, tm)
			}
		}
	}
	sort.Float64s(out)
	return out
}
