package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/simnet"
)

func TestEngineBoots(t *testing.T) {
	e := NewEngine(DefaultOptions())
	if len(e.Cluster.Executors) != 20 || len(e.Cluster.Servers) != 20 {
		t.Fatalf("cluster shape wrong: %d executors, %d servers", len(e.Cluster.Executors), len(e.Cluster.Servers))
	}
	end := e.Run(func(p *simnet.Proc) {
		p.Sleep(2.5)
	})
	if end != 2.5 {
		t.Fatalf("Run returned %v, want 2.5", end)
	}
}

func TestEngineSeparateApplications(t *testing.T) {
	// The PS master and the dataflow context must not share machines'
	// roles: servers are distinct from executors and the driver.
	e := NewEngine(DefaultOptions())
	seen := map[int]bool{seenID(e): true}
	for _, n := range e.Cluster.Executors {
		if seen[n.ID] {
			t.Fatalf("node %d reused", n.ID)
		}
		seen[n.ID] = true
	}
	for _, n := range e.Cluster.Servers {
		if seen[n.ID] {
			t.Fatalf("node %d reused", n.ID)
		}
		seen[n.ID] = true
	}
}

func seenID(e *Engine) int { return e.Cluster.Driver.ID }

func TestTraceBasics(t *testing.T) {
	tr := &Trace{Name: "x"}
	if !math.IsNaN(tr.Final()) || !math.IsNaN(tr.Best()) {
		t.Fatal("empty trace should be NaN")
	}
	tr.Add(1, 0.9)
	tr.Add(2, 0.5)
	tr.Add(3, 0.6)
	tr.Add(4, 0.3)
	if tr.Final() != 0.3 || tr.Best() != 0.3 || tr.Len() != 4 {
		t.Fatalf("trace stats wrong: %+v", tr)
	}
	if got := tr.TimeToReach(0.5); got != 2 {
		t.Fatalf("TimeToReach(0.5) = %v, want 2", got)
	}
	if got := tr.TimeToReach(0.1); !math.IsInf(got, 1) {
		t.Fatalf("TimeToReach(0.1) = %v, want +Inf", got)
	}
	if got := tr.TimeToReachRising(0.55); got != 1 {
		t.Fatalf("TimeToReachRising = %v, want 1", got)
	}
	if !strings.Contains(tr.String(), "4 samples") {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestSpeedup(t *testing.T) {
	a := &Trace{Name: "fast"}
	a.Add(1, 0.5)
	b := &Trace{Name: "slow"}
	b.Add(10, 0.5)
	if got := Speedup(a, b, 0.5); got != 10 {
		t.Fatalf("Speedup = %v, want 10", got)
	}
	if got := Speedup(a, b, 0.1); !math.IsNaN(got) {
		t.Fatalf("unreachable target Speedup = %v, want NaN", got)
	}
}

func TestCommonTarget(t *testing.T) {
	a := &Trace{}
	a.Add(1, 0.5)
	a.Add(2, 0.2)
	b := &Trace{}
	b.Add(1, 0.6)
	b.Add(2, 0.4)
	target := CommonTarget(a, b)
	if target < 0.4 || target > 0.42 {
		t.Fatalf("CommonTarget = %v, want ~0.408", target)
	}
	if math.IsInf(a.TimeToReach(target), 1) || math.IsInf(b.TimeToReach(target), 1) {
		t.Fatal("both traces must reach the common target")
	}
}

func TestDownsample(t *testing.T) {
	tr := &Trace{Name: "x"}
	for i := 0; i < 100; i++ {
		tr.Add(float64(i), float64(100-i))
	}
	d := tr.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled to %d, want 10", d.Len())
	}
	if d.Times[0] != 0 || d.Times[9] != 99 {
		t.Fatalf("endpoints lost: %v .. %v", d.Times[0], d.Times[9])
	}
	small := &Trace{}
	small.Add(1, 1)
	if small.Downsample(10) != small {
		t.Fatal("short traces should be returned unchanged")
	}
}

func TestSortedTimes(t *testing.T) {
	a := &Trace{}
	a.Add(3, 1)
	a.Add(1, 1)
	b := &Trace{}
	b.Add(2, 1)
	b.Add(3, 1)
	got := SortedTimes(a, b)
	want := []float64{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("SortedTimes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedTimes = %v, want %v", got, want)
		}
	}
}

func TestTaskFailureOptionWiresThrough(t *testing.T) {
	opt := DefaultOptions()
	opt.TaskFailProb = 0.25
	e := NewEngine(opt)
	if e.RDD.FailProb != 0.25 {
		t.Fatalf("FailProb = %v, want 0.25", e.RDD.FailProb)
	}
}

func TestUtilizationReport(t *testing.T) {
	e := NewEngine(DefaultOptions())
	e.Run(func(p *simnet.Proc) {
		e.Cluster.Executors[0].Send(p, e.Cluster.Servers[0], 2e6)
		e.Cluster.Servers[0].Compute(p, 1e8) // one core-second
		e.Cluster.Driver.Send(p, e.Cluster.Executors[1], 5e5)
	})
	r := e.Report()
	if r.ExecutorSentMB < 2 || r.ServerRecvMB < 2 {
		t.Fatalf("executor->server traffic missing: %+v", r)
	}
	if r.ServerCoreSec < 0.99 || r.ServerCoreSec > 1.01 {
		t.Fatalf("server core-seconds = %v, want ~1", r.ServerCoreSec)
	}
	if r.DriverSentMB < 0.5 {
		t.Fatalf("driver egress missing: %+v", r)
	}
	if r.Events == 0 {
		t.Fatal("no events recorded")
	}
	if len(r.String()) == 0 {
		t.Fatal("empty report string")
	}
}
