package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/simnet"
)

func TestEngineBoots(t *testing.T) {
	e := NewEngine(DefaultOptions())
	if len(e.Cluster.Executors) != 20 || len(e.Cluster.Servers) != 20 {
		t.Fatalf("cluster shape wrong: %d executors, %d servers", len(e.Cluster.Executors), len(e.Cluster.Servers))
	}
	end := e.Run(func(p *simnet.Proc) {
		p.Sleep(2.5)
	})
	if end != 2.5 {
		t.Fatalf("Run returned %v, want 2.5", end)
	}
}

func TestEngineSeparateApplications(t *testing.T) {
	// The PS master and the dataflow context must not share machines'
	// roles: servers are distinct from executors and the driver.
	e := NewEngine(DefaultOptions())
	seen := map[int]bool{seenID(e): true}
	for _, n := range e.Cluster.Executors {
		if seen[n.ID] {
			t.Fatalf("node %d reused", n.ID)
		}
		seen[n.ID] = true
	}
	for _, n := range e.Cluster.Servers {
		if seen[n.ID] {
			t.Fatalf("node %d reused", n.ID)
		}
		seen[n.ID] = true
	}
}

func seenID(e *Engine) int { return e.Cluster.Driver.ID }

func TestTraceBasics(t *testing.T) {
	tr := &Trace{Name: "x"}
	if !math.IsNaN(tr.Final()) || !math.IsNaN(tr.Best()) {
		t.Fatal("empty trace should be NaN")
	}
	tr.Add(1, 0.9)
	tr.Add(2, 0.5)
	tr.Add(3, 0.6)
	tr.Add(4, 0.3)
	if tr.Final() != 0.3 || tr.Best() != 0.3 || tr.Len() != 4 {
		t.Fatalf("trace stats wrong: %+v", tr)
	}
	if got := tr.TimeToReach(0.5); got != 2 {
		t.Fatalf("TimeToReach(0.5) = %v, want 2", got)
	}
	if got := tr.TimeToReach(0.1); !math.IsInf(got, 1) {
		t.Fatalf("TimeToReach(0.1) = %v, want +Inf", got)
	}
	if got := tr.TimeToReachRising(0.55); got != 1 {
		t.Fatalf("TimeToReachRising = %v, want 1", got)
	}
	if !strings.Contains(tr.String(), "4 samples") {
		t.Fatalf("String = %q", tr.String())
	}
}

// TestDownsampleKeepsFinalSample pins the boundary behaviour: whatever the
// requested size — in particular when it does not divide the length — the
// last sample (the converged loss a table quotes) must survive, alongside
// the first, with times still strictly increasing.
func TestDownsampleKeepsFinalSample(t *testing.T) {
	tr := &Trace{Name: "x"}
	for i := 0; i < 10; i++ {
		tr.Add(float64(i), float64(2*i))
	}
	for _, n := range []int{2, 3, 4, 6, 7, 9} {
		ds := tr.Downsample(n)
		if ds.Len() != n {
			t.Fatalf("Downsample(%d).Len() = %d", n, ds.Len())
		}
		if ds.Times[0] != 0 {
			t.Fatalf("Downsample(%d) dropped the first sample", n)
		}
		if got := ds.Times[n-1]; got != 9 {
			t.Fatalf("Downsample(%d) final time = %v, want 9 (last sample dropped)", n, got)
		}
		if got := ds.Values[n-1]; got != 18 {
			t.Fatalf("Downsample(%d) final value = %v, want 18", n, got)
		}
		for i := 1; i < n; i++ {
			if ds.Times[i] <= ds.Times[i-1] {
				t.Fatalf("Downsample(%d) times not increasing: %v", n, ds.Times)
			}
		}
	}
	// Degenerate sizes return the trace unchanged.
	for _, n := range []int{10, 100, 1, 0, -3} {
		if tr.Downsample(n) != tr {
			t.Fatalf("Downsample(%d) should return the receiver", n)
		}
	}
}

func TestSpeedup(t *testing.T) {
	a := &Trace{Name: "fast"}
	a.Add(1, 0.5)
	b := &Trace{Name: "slow"}
	b.Add(10, 0.5)
	if got := Speedup(a, b, 0.5); got != 10 {
		t.Fatalf("Speedup = %v, want 10", got)
	}
	if got := Speedup(a, b, 0.1); !math.IsNaN(got) {
		t.Fatalf("unreachable target Speedup = %v, want NaN", got)
	}
}

func TestCommonTarget(t *testing.T) {
	a := &Trace{}
	a.Add(1, 0.5)
	a.Add(2, 0.2)
	b := &Trace{}
	b.Add(1, 0.6)
	b.Add(2, 0.4)
	target := CommonTarget(a, b)
	if target < 0.4 || target > 0.42 {
		t.Fatalf("CommonTarget = %v, want ~0.408", target)
	}
	if math.IsInf(a.TimeToReach(target), 1) || math.IsInf(b.TimeToReach(target), 1) {
		t.Fatal("both traces must reach the common target")
	}
}

func TestDownsample(t *testing.T) {
	tr := &Trace{Name: "x"}
	for i := 0; i < 100; i++ {
		tr.Add(float64(i), float64(100-i))
	}
	d := tr.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled to %d, want 10", d.Len())
	}
	if d.Times[0] != 0 || d.Times[9] != 99 {
		t.Fatalf("endpoints lost: %v .. %v", d.Times[0], d.Times[9])
	}
	small := &Trace{}
	small.Add(1, 1)
	if small.Downsample(10) != small {
		t.Fatal("short traces should be returned unchanged")
	}
}

func TestSortedTimes(t *testing.T) {
	a := &Trace{}
	a.Add(3, 1)
	a.Add(1, 1)
	b := &Trace{}
	b.Add(2, 1)
	b.Add(3, 1)
	got := SortedTimes(a, b)
	want := []float64{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("SortedTimes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedTimes = %v, want %v", got, want)
		}
	}
}

func TestTaskFailureOptionWiresThrough(t *testing.T) {
	opt := DefaultOptions()
	opt.TaskFailProb = 0.25
	e := NewEngine(opt)
	if e.RDD.FailProb != 0.25 {
		t.Fatalf("FailProb = %v, want 0.25", e.RDD.FailProb)
	}
}

func TestSnapshot(t *testing.T) {
	e := NewEngine(DefaultOptions())
	e.Run(func(p *simnet.Proc) {
		e.Cluster.Executors[0].Send(p, e.Cluster.Servers[0], 2e6)
		e.Cluster.Servers[0].Compute(p, 1e8) // one core-second
		e.Cluster.Driver.Send(p, e.Cluster.Executors[1], 5e5)
	})
	s := e.Snapshot()
	if s.Net.ExecutorSentMB < 2 || s.Net.ServerRecvMB < 2 {
		t.Fatalf("executor->server traffic missing: %+v", s.Net)
	}
	if s.Phases.ServerCoreSec < 0.99 || s.Phases.ServerCoreSec > 1.01 {
		t.Fatalf("server core-seconds = %v, want ~1", s.Phases.ServerCoreSec)
	}
	if s.Net.DriverSentMB < 0.5 {
		t.Fatalf("driver egress missing: %+v", s.Net)
	}
	if s.Events == 0 {
		t.Fatal("no events recorded")
	}
	if s.Phases.Traced {
		t.Fatal("Traced = true on an untraced run")
	}
	if len(s.String()) == 0 {
		t.Fatal("empty snapshot string")
	}
	if s.Serve.Active() {
		t.Fatalf("serve section active on a run that never served: %+v", s.Serve)
	}
	if s.Recovery != (obs.RecoverySnapshot{}) {
		t.Fatalf("recovery section non-zero on a clean run: %+v", s.Recovery)
	}
}
