package ps2

import (
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/ml/lr"
	"repro/internal/rdd"
)

// TestPreprocessThenTrainSingleSystem is the paper's core pitch as an
// integration test: raw events are cleaned and featurized with dataflow
// operators (a real shuffle included) and the resulting instances train on
// the parameter servers — one engine, no data movement between systems.
func TestPreprocessThenTrainSingleSystem(t *testing.T) {
	type event struct {
		User int32
		Item int32
	}
	const users, items = 800, 500
	rng := linalg.NewRNG(41)
	good := map[int32]bool{}
	for len(good) < items/10 {
		good[int32(rng.Intn(items))] = true
	}
	var events []event
	converted := map[int32]bool{}
	for i := 0; i < 16000; i++ {
		ev := event{User: int32(rng.Intn(users)), Item: int32(rng.Zipf(items, 1.05))}
		if good[ev.Item] {
			converted[ev.User] = true
		}
		events = append(events, ev)
	}

	opt := DefaultOptions()
	opt.Executors, opt.Servers = 4, 4
	e := NewEngine(opt)

	var metrics lr.ClusterMetrics
	e.Run(func(p *Proc) {
		parts := make([][]event, 4)
		for i, ev := range events {
			parts[i%4] = append(parts[i%4], ev)
		}
		logRDD := rdd.FromSlices(e.RDD, parts).Cache()

		// Frequency pruning with a shuffle.
		counts := rdd.ReduceByKey(p,
			rdd.Map(logRDD, func(ev event) rdd.Pair[int32, int] { return rdd.Pair[int32, int]{Key: ev.Item, Value: 1} }),
			4, 12, func(k int32) int { return int(k) }, func(a, b int) int { return a + b })
		kept := map[int32]int{}
		var ids []int32
		for _, kv := range rdd.Collect(p, counts, 12) {
			if kv.Value >= 3 {
				ids = append(ids, kv.Key)
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for i, id := range ids {
			kept[id] = i
		}
		if len(kept) < items/4 {
			t.Fatalf("pruning kept only %d items", len(kept))
		}

		// Per-user bag-of-items instances.
		type bag struct{ items map[int]bool }
		perUser := rdd.ReduceByKey(p,
			rdd.Map(logRDD, func(ev event) rdd.Pair[int32, bag] {
				b := bag{items: map[int]bool{}}
				if col, ok := kept[ev.Item]; ok {
					b.items[col] = true
				}
				return rdd.Pair[int32, bag]{Key: ev.User, Value: b}
			}),
			4, 64, func(k int32) int { return int(k) },
			func(a, b bag) bag {
				for c := range b.items {
					a.items[c] = true
				}
				return a
			})
		instances := rdd.Map(perUser, func(kv rdd.Pair[int32, bag]) data.Instance {
			var idx []int
			for c := range kv.Value.items {
				idx = append(idx, c)
			}
			sort.Ints(idx)
			vals := make([]float64, len(idx))
			for i := range vals {
				vals[i] = 1
			}
			sv, err := linalg.NewSparse(idx, vals)
			if err != nil {
				t.Fatal(err)
			}
			label := 0.0
			if converted[kv.Key] {
				label = 1
			}
			return data.Instance{Features: sv, Label: label}
		}).Cache()

		cfg := lr.DefaultConfig()
		cfg.Iterations = 30
		cfg.BatchFraction = 0.5
		cfg.LearningRate = 0.3
		model, err := TrainLogistic(p, e, instances, len(kept), cfg, lr.NewAdam())
		if err != nil {
			t.Fatal(err)
		}
		metrics = lr.EvalOnCluster(p, e, instances, lr.Logistic, model.Weights)
	})
	if metrics.Rows == 0 {
		t.Fatal("no instances evaluated")
	}
	if metrics.Accuracy < 0.85 {
		t.Fatalf("pipeline accuracy %v; the conversion signal is deterministic and should be learnable", metrics.Accuracy)
	}
}
