# Convenience targets; `make check` is the tier-1 gate run before merging.

.PHONY: check test bench

check:
	./scripts/check.sh

test:
	go test -race -timeout 20m ./...

bench:
	go test -run XXX -bench . -benchtime 1x ./...
