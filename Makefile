# Convenience targets; `make check` is the tier-1 gate run before merging.

.PHONY: check test bench bench-compare

check:
	./scripts/check.sh

test:
	go test -race -timeout 20m ./...

bench:
	go test -run XXX -bench . -benchtime 1x ./...

# Compare the hot-path benchmarks against a baseline git ref and fail on
# >10% ns/op regression (best-of-5, benchstat-style table). Knobs:
#   make bench-compare BASELINE=main BENCH_THRESHOLD=5
BASELINE ?= HEAD
bench-compare:
	./scripts/bench_compare.sh $(BASELINE)
