// Consistency-policy integration tests: full LR training jobs run under the
// pluggable policy seam, checking the refactor's three end-to-end contracts —
// an explicit clock-bounded policy is bit-identical to the legacy Staleness
// field, a value-bounded policy pulls fewer bytes at equal final quality, and
// adaptive runs produce byte-identical decision counters across repeats.
package ps2

import (
	"math"
	"testing"
)

// TestClockPolicyBitIdenticalToStaleness is the refactor's exactness
// contract: CacheConfig{Policy: ClockBoundedPolicy(s)} must reproduce
// CacheConfig{Staleness: s} — same trained loss to the bit, same virtual
// finish time, same wire-byte accounting. The legacy field now merely
// selects the same policy internally, and this pins that equivalence.
func TestClockPolicyBitIdenticalToStaleness(t *testing.T) {
	ds, cfg := lrSoakConfig()
	cfg.BatchFraction = 1.0
	const parts = 32

	legacy := cfg
	legacy.Cache = &CacheConfig{Staleness: 2}
	legacyLoss, legacyEnd, legacyEngine := runLRParts(t, ds, legacy, parts)

	policy := cfg
	policy.Cache = &CacheConfig{Policy: ClockBoundedPolicy(2)}
	policyLoss, policyEnd, policyEngine := runLRParts(t, ds, policy, parts)

	if legacyLoss != policyLoss || legacyEnd != policyEnd {
		t.Fatalf("explicit clock policy diverged from Staleness field: loss %v vs %v, end %v vs %v",
			legacyLoss, policyLoss, legacyEnd, policyEnd)
	}
	lc, pc := legacyEngine.Snapshot().Cache, policyEngine.Snapshot().Cache
	if lc != pc {
		t.Fatalf("cache accounting diverged:\nlegacy %+v\npolicy %+v", lc, pc)
	}
	cons := policyEngine.Snapshot().Consistency
	if cons.Policy != "clock" {
		t.Fatalf("consistency snapshot policy = %q, want clock", cons.Policy)
	}
	if cons.Decisions() == 0 {
		t.Fatalf("clock policy recorded no decisions: %+v", cons)
	}
}

// TestValueBoundedSavesBytesAtEqualLoss is the refactor's payoff contract on
// the Zipf-skewed full-batch workload: a value-bounded policy serves cached
// weights while accumulated |delta| stays under the bound — regardless of
// clock age — so as gradients shrink it keeps serving where the clock policy
// keeps revalidating. It must pull measurably fewer bytes than clock-bounded
// staleness 2 while converging to within a hair of the same loss. (The
// committed ablation lives in BENCH_CONSISTENCY.json; this is the quick
// always-on gate.)
func TestValueBoundedSavesBytesAtEqualLoss(t *testing.T) {
	ds, cfg := lrSoakConfig()
	cfg.BatchFraction = 1.0
	const parts = 32

	clock := cfg
	clock.Cache = &CacheConfig{Staleness: 2}
	clockLoss, _, clockEngine := runLRParts(t, ds, clock, parts)

	value := cfg
	value.Cache = &CacheConfig{Policy: ValueBoundedPolicy(1.0)}
	valueLoss, _, valueEngine := runLRParts(t, ds, value, parts)

	if math.IsNaN(valueLoss) {
		t.Fatal("value-bounded run produced no model")
	}
	if rel := math.Abs(valueLoss-clockLoss) / clockLoss; rel > 0.05 {
		t.Fatalf("value-bounded loss %v vs clock-bounded %v: gap %.1f%% too large",
			valueLoss, clockLoss, 100*rel)
	}
	cb, vb := clockEngine.Snapshot().Cache, valueEngine.Snapshot().Cache
	if vb.PulledMB >= 0.75*cb.PulledMB {
		t.Fatalf("value-bounded pulled %.3f MB vs clock-bounded %.3f MB; want >= 25%% fewer bytes",
			vb.PulledMB, cb.PulledMB)
	}
	cons := valueEngine.Snapshot().Consistency
	if cons.Policy != "value" {
		t.Fatalf("consistency snapshot policy = %q, want value", cons.Policy)
	}
	if cons.ServedCached == 0 {
		t.Fatalf("value-bounded policy never served from cache: %+v", cons)
	}
}

// TestAdaptivePolicyEndToEndDeterminism repeats an adaptive-policy training
// run and requires byte-identical results everywhere it could diverge: the
// trained loss, the virtual finish time, the cache accounting and — the
// point of the test — the decision counters and the EWMA-derived effective
// bound. The adaptive controller's state updates ride the deterministic
// simulation order, so two runs must agree exactly.
func TestAdaptivePolicyEndToEndDeterminism(t *testing.T) {
	ds, cfg := lrSoakConfig()
	cfg.BatchFraction = 1.0
	cfg.Iterations = 15
	const parts = 32

	one := func() (float64, float64, Snapshot) {
		run := cfg
		run.Cache = &CacheConfig{Policy: AdaptivePolicy(0.05)}
		loss, end, engine := runLRParts(t, ds, run, parts)
		return loss, end, engine.Snapshot()
	}
	l1, e1, s1 := one()
	l2, e2, s2 := one()
	if l1 != l2 || e1 != e2 {
		t.Fatalf("adaptive runs diverged: loss %v vs %v, end %v vs %v", l1, l2, e1, e2)
	}
	if s1.Consistency != s2.Consistency {
		t.Fatalf("adaptive decision counters diverged:\nrun1 %+v\nrun2 %+v", s1.Consistency, s2.Consistency)
	}
	if s1.Cache != s2.Cache {
		t.Fatalf("adaptive cache accounting diverged:\nrun1 %+v\nrun2 %+v", s1.Cache, s2.Cache)
	}
	cons := s1.Consistency
	if cons.Policy != "adaptive" {
		t.Fatalf("consistency snapshot policy = %q, want adaptive", cons.Policy)
	}
	if cons.Tightenings+cons.Relaxations == 0 {
		t.Fatalf("adaptive bound never moved: %+v", cons)
	}
}
